// Synchronizer option and edge-case tests: strategy toggles, the rewriting
// cap, PC-hop limits, target-fragment pinning, multi-FROM-item folding, and
// behavior on incomparable (bridged) constraints.

#include <gtest/gtest.h>

#include "esql/parser.h"
#include "esql/printer.h"
#include "misd/mkb.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

Schema IntSchema(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  for (const std::string& n : names) {
    attrs.push_back(Attribute::Make(n, DataType::kInt64, 50));
  }
  return Schema(std::move(attrs));
}

class OptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                               IntSchema({"A", "B"}), 100)
                    .ok());
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS2", "S"},
                                               IntSchema({"A", "B"}), 200)
                    .ok());
    ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                      RelationId{"IS2", "S"},
                                                      {"A", "B"},
                                                      PcRelationType::kSubset))
                    .ok());
    view_ = Parse(
        "CREATE VIEW V AS SELECT R.A (AD=true, AR=true), "
        "R.B (AD=true, AR=true) FROM R (RR=true)");
    change_ = SchemaChange(DeleteRelation{RelationId{"IS1", "R"}});
  }
  MetaKnowledgeBase mkb_;
  ViewDefinition view_;
  SchemaChange change_{DeleteRelation{RelationId{"IS1", "R"}}};
};

TEST_F(OptionsTest, DisablingRelationReplacementKillsView) {
  SynchronizerOptions options;
  options.strategies = StrategySet(Strategy::kJoinIn);
  ViewSynchronizer synchronizer(mkb_, options);
  const auto result = synchronizer.Synchronize(view_, change_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->affected);
  // Only the single FROM item exists: nothing left to drop into.
  EXPECT_TRUE(result->rewritings.empty());
}

TEST_F(OptionsTest, MaxRewritingsCapsOutput) {
  // Add several alternative replacement targets.
  for (int i = 0; i < 6; ++i) {
    const RelationId id{"ISx" + std::to_string(i), "T" + std::to_string(i)};
    ASSERT_TRUE(
        mkb_.RegisterRelationWithStats(id, IntSchema({"A", "B"}), 300).ok());
    ASSERT_TRUE(mkb_.AddPcConstraint(
                        MakeProjectionPc(RelationId{"IS1", "R"}, id, {"A", "B"},
                                         PcRelationType::kEquivalent))
                    .ok());
  }
  SynchronizerOptions options;
  options.max_rewritings = 3;
  ViewSynchronizer synchronizer(mkb_, options);
  const auto result = synchronizer.Synchronize(view_, change_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewritings.size(), 3u);

  options.max_rewritings = 256;
  ViewSynchronizer full(mkb_, options);
  const auto all = full.Synchronize(view_, change_);
  ASSERT_TRUE(all.ok());
  EXPECT_GE(all->rewritings.size(), 7u);  // 6 equivalents + the subset one.
}

TEST_F(OptionsTest, PcHopLimitGatesTransitiveReplacements) {
  // Chain S -> U so that U is reachable from R only in two hops.
  ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS3", "U"},
                                             IntSchema({"A", "B"}), 400)
                  .ok());
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS2", "S"},
                                                    RelationId{"IS3", "U"},
                                                    {"A", "B"},
                                                    PcRelationType::kSubset))
                  .ok());
  auto count_targets = [&](int hops) {
    SynchronizerOptions options;
    options.max_pc_hops = hops;
    ViewSynchronizer synchronizer(mkb_, options);
    const auto result = synchronizer.Synchronize(view_, change_);
    EXPECT_TRUE(result.ok());
    std::set<std::string> targets;
    for (const Rewriting& rw : result->rewritings) {
      for (const ReplacementRecord& rec : rw.replacements) {
        targets.insert(rec.replacement.relation);
      }
    }
    return targets;
  };
  EXPECT_EQ(count_targets(1), (std::set<std::string>{"S"}));
  EXPECT_EQ(count_targets(2), (std::set<std::string>{"S", "U"}));
}

TEST(TargetSelectionTest, FragmentConditionPinnedWhenEnabled) {
  // PC: R equivalent sigma_{A<50}(S): the replacement should carry the
  // fragment condition when apply_target_selection is on.
  MetaKnowledgeBase mkb;
  const Schema schema({Attribute::Make("A", DataType::kInt64, 50)});
  ASSERT_TRUE(
      mkb.RegisterRelationWithStats(RelationId{"IS1", "R"}, schema, 100).ok());
  ASSERT_TRUE(
      mkb.RegisterRelationWithStats(RelationId{"IS2", "S"}, schema, 300).ok());
  PcConstraint pc;
  pc.left = PcSide{RelationId{"IS1", "R"}, {"A"}, {}, 1.0};
  Conjunction sel;
  sel.Add(PrimitiveClause::AttrConst(RelAttr{"S", "A"}, CompOp::kLess, Value(50)));
  pc.right = PcSide{RelationId{"IS2", "S"}, {"A"}, sel, 0.33};
  pc.type = PcRelationType::kEquivalent;
  ASSERT_TRUE(mkb.AddPcConstraint(pc).ok());

  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.A (AR=true) FROM R (RR=true)");
  const SchemaChange change(DeleteRelation{RelationId{"IS1", "R"}});

  SynchronizerOptions with;
  with.apply_target_selection = true;
  ViewSynchronizer pinned(mkb, with);
  const auto pinned_result = pinned.Synchronize(view, change);
  ASSERT_TRUE(pinned_result.ok());
  ASSERT_EQ(pinned_result->rewritings.size(), 1u);
  const Rewriting& rw = pinned_result->rewritings[0];
  ASSERT_EQ(rw.definition.where.size(), 1u);
  EXPECT_EQ(rw.definition.where[0].clause.ToString(), "S.A < 50");
  // Pinning makes the fragment relationship exact: R equivalent sigma(S).
  EXPECT_EQ(rw.extent_relation, ExtentRel::kEqual);
  EXPECT_TRUE(rw.extent_exact);

  SynchronizerOptions without;
  without.apply_target_selection = false;
  ViewSynchronizer loose(mkb, without);
  const auto loose_result = loose.Synchronize(view, change);
  ASSERT_TRUE(loose_result.ok());
  ASSERT_EQ(loose_result->rewritings.size(), 1u);
  EXPECT_TRUE(loose_result->rewritings[0].definition.where.empty());
  // Using all of S widens the extent: R = sigma(S) subseteq S.
  EXPECT_EQ(loose_result->rewritings[0].extent_relation, ExtentRel::kSuperset);
}

TEST(MultiItemTest, DeleteRelationReferencedTwiceFoldsBothItems) {
  // The same base relation appears twice under aliases; deleting it must
  // resolve BOTH FROM items (via replacement on each).
  MetaKnowledgeBase mkb;
  const Schema schema({Attribute::Make("A", DataType::kInt64, 50),
                       Attribute::Make("B", DataType::kInt64, 50)});
  ASSERT_TRUE(
      mkb.RegisterRelationWithStats(RelationId{"IS1", "R"}, schema, 100).ok());
  ASSERT_TRUE(
      mkb.RegisterRelationWithStats(RelationId{"IS2", "S"}, schema, 100).ok());
  ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                   RelationId{"IS2", "S"},
                                                   {"A", "B"},
                                                   PcRelationType::kEquivalent))
                  .ok());
  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT x.A (AR=true), y.B (AR=true) "
      "FROM R x (RR=true), R y (RR=true) WHERE (x.A = y.A) (CR=true)");
  ViewSynchronizer synchronizer(mkb);
  const auto result = synchronizer.Synchronize(
      view, SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rewritings.empty());
  for (const Rewriting& rw : result->rewritings) {
    // No FROM item may still reference the deleted relation.
    for (const FromItem& f : rw.definition.from_items) {
      EXPECT_NE(f.relation, "R") << rw.Summary();
    }
    EXPECT_EQ(rw.replacements.size(), 2u) << rw.Summary();
  }
}

TEST(IncomparableTest, BridgedReplacementLegalOnlyUnderApproximateVe) {
  // S and T are related only through a deleted common fragment: the bridge
  // is incomparable, so a VE='~' view survives S's deletion via T but a
  // VE='subset' view does not.
  MetaKnowledgeBase mkb;
  const Schema schema({Attribute::Make("A", DataType::kInt64, 50)});
  ASSERT_TRUE(
      mkb.RegisterRelationWithStats(RelationId{"IS1", "R"}, schema, 100).ok());
  ASSERT_TRUE(
      mkb.RegisterRelationWithStats(RelationId{"IS2", "S"}, schema, 150).ok());
  ASSERT_TRUE(
      mkb.RegisterRelationWithStats(RelationId{"IS3", "T"}, schema, 200).ok());
  ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                   RelationId{"IS2", "S"}, {"A"},
                                                   PcRelationType::kSubset))
                  .ok());
  ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                   RelationId{"IS3", "T"}, {"A"},
                                                   PcRelationType::kSubset))
                  .ok());
  // R disappears; bridging installs S ~incomparable~ T.
  ASSERT_TRUE(mkb.UnregisterRelation(RelationId{"IS1", "R"}).ok());

  const SchemaChange change(DeleteRelation{RelationId{"IS2", "S"}});
  for (const auto& [ve, expect_rewriting] :
       std::vector<std::pair<const char*, bool>>{{"~", true},
                                                 {"subset", false}}) {
    const ViewDefinition view = Parse(
        std::string("CREATE VIEW V (VE = ") + ve +
        ") AS SELECT S.A (AR=true) FROM S (RR=true)");
    ViewSynchronizer synchronizer(mkb);
    const auto result = synchronizer.Synchronize(view, change);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(!result->rewritings.empty(), expect_rewriting) << "VE=" << ve;
    if (expect_rewriting) {
      EXPECT_EQ(result->rewritings[0].extent_relation, ExtentRel::kUnknown);
      EXPECT_FALSE(result->rewritings[0].extent_exact);
    }
  }
}

}  // namespace
}  // namespace eve
