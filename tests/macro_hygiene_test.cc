// Macro-hygiene tests for the error-propagation macros: they must behave
// as single complete statements.  EVE_RETURN_IF_ERROR is safe as the body
// of a brace-less if/else/loop and never steals a trailing `else`;
// EVE_ASSIGN_OR_RETURN declares a temporary, so brace-less use is a
// *compile error* rather than a silent misbehavior -- the rejected forms
// are asserted by the macro_hygiene_fail_* compile-fail tests registered
// in CMakeLists.txt (see tests/macro_hygiene_fail.cc).

#include <gtest/gtest.h>

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace eve {
namespace {

Status StatusIf(bool fail) {
  return fail ? Status::Internal("injected") : Status::OK();
}

Result<int> ResultIf(bool fail) {
  if (fail) return Status::Internal("injected");
  return 7;
}

// EVE_RETURN_IF_ERROR as the body of a brace-less `if`: the macro expands
// to one complete if/else statement, so this parses and the trailing
// `else` below binds to the OUTER if, not to the macro's internals.
Status BracelessIfBody(bool check, bool fail, std::string* trace) {
  if (check)
    EVE_RETURN_IF_ERROR(StatusIf(fail));
  else
    *trace += "outer-else;";
  *trace += "fallthrough;";
  return Status::OK();
}

TEST(MacroHygiene, ReturnIfErrorIsASingleStatement) {
  std::string trace;
  EXPECT_TRUE(BracelessIfBody(false, false, &trace).ok());
  EXPECT_EQ(trace, "outer-else;fallthrough;")
      << "the user else must bind to the outer if";
  trace.clear();
  EXPECT_TRUE(BracelessIfBody(true, false, &trace).ok());
  EXPECT_EQ(trace, "fallthrough;");
  trace.clear();
  const Status failed = BracelessIfBody(true, true, &trace);
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  EXPECT_EQ(trace, "") << "the error must return before any tracing";
}

Status BracelessLoopBody(int rounds, int fail_at) {
  for (int i = 0; i < rounds; ++i)
    EVE_RETURN_IF_ERROR(StatusIf(i == fail_at));
  return Status::OK();
}

TEST(MacroHygiene, ReturnIfErrorAsLoopBody) {
  EXPECT_TRUE(BracelessLoopBody(5, -1).ok());
  EXPECT_FALSE(BracelessLoopBody(5, 3).ok());
}

Result<int> AssignInBlock(bool fail) {
  EVE_ASSIGN_OR_RETURN(const int v, ResultIf(fail));
  return v * 2;
}

TEST(MacroHygiene, AssignOrReturnDeclaresAndPropagates) {
  EXPECT_EQ(AssignInBlock(false).value(), 14);
  const auto failed = AssignInBlock(true);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
}

// Two expansions in one block must not collide (the internal temporary is
// line-numbered).
Result<int> TwoAssignsOneBlock() {
  EVE_ASSIGN_OR_RETURN(const int a, ResultIf(false));
  EVE_ASSIGN_OR_RETURN(const int b, ResultIf(false));
  return a + b;
}

TEST(MacroHygiene, AssignOrReturnTemporariesDoNotCollide) {
  EXPECT_EQ(TwoAssignsOneBlock().value(), 14);
}

// Assigning to an existing lvalue (not a declaration) also works.
Result<int> AssignToExisting() {
  int v = 0;
  EVE_ASSIGN_OR_RETURN(v, ResultIf(false));
  return v;
}

TEST(MacroHygiene, AssignOrReturnToExistingVariable) {
  EXPECT_EQ(AssignToExisting().value(), 7);
}

TEST(MacroHygiene, StatusSelfAssignmentAndCopies) {
  Status s = Status::NotFound("x");
  s = *&s;  // Self-assignment must be safe.
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kNotFound);
}

TEST(MacroHygiene, ValueOrMovesFromRvalueResult) {
  // The rvalue overload must move the payload out, not copy it: observable
  // through a move-only-ish marker (unique string buffer identity is not
  // portable, so assert semantics instead -- the moved-from Result is
  // consumed by value category alone).
  Result<std::string> r(std::string(1000, 'x'));
  const std::string moved = std::move(r).value_or("fallback");
  EXPECT_EQ(moved.size(), 1000u);
  Result<std::string> err = Status::Internal("boom");
  EXPECT_EQ(std::move(err).value_or("fallback"), "fallback");
}

}  // namespace
}  // namespace eve
