// Regression pins for the experiment harness: the shape claims of the
// paper's figures are asserted here so that model changes that silently
// break a reproduced trend fail CI, not just change bench output.

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_util/distributions.h"
#include "bench_util/experiment_common.h"

namespace eve {
namespace {

double GroupBytes(const DistributionGroup& group, const UniformParams& params,
                  const CostModelOptions& options) {
  double sum = 0;
  for (const std::vector<int>& dist : group.members) {
    const auto cf = FirstSiteUpdateCost(MakeUniformInput(dist, params), options);
    EXPECT_TRUE(cf.ok());
    sum += cf->bytes;
  }
  return sum / static_cast<double>(group.members.size());
}

std::map<std::string, double> Fig14Panel(double js) {
  UniformParams params;
  params.join_selectivity = js;
  params.local_selectivity = 1.0;  // Experiment 3 configuration.
  const CostModelOptions options = MakeUniformOptions(params);
  std::map<std::string, double> out;
  for (int m = 2; m <= 4; ++m) {
    for (const DistributionGroup& group :
         GroupedCompositions(params.num_relations, m)) {
      out[group.label] = GroupBytes(group, params, options);
    }
  }
  return out;
}

// Fig. 14(c): js = 0.005 (growing deltas) -> even distributions cheaper.
TEST(Fig14Regression, HighJsFavorsEvenDistributions) {
  const auto panel = Fig14Panel(0.005);
  EXPECT_LT(panel.at("3/3"), panel.at("2/4"));
  EXPECT_LT(panel.at("2/4"), panel.at("1/5"));
  EXPECT_LT(panel.at("2/2/2"), panel.at("1/2/3"));
  EXPECT_LT(panel.at("1/2/3"), panel.at("1/1/4"));
  EXPECT_LT(panel.at("1/1/2/2"), panel.at("1/1/1/3"));
}

// Fig. 14(a): js = 0.001 (shrinking deltas) -> skewed distributions cheaper.
TEST(Fig14Regression, LowJsFavorsSkewedDistributions) {
  const auto panel = Fig14Panel(0.001);
  EXPECT_LT(panel.at("1/5"), panel.at("3/3"));
  EXPECT_LT(panel.at("1/1/4"), panel.at("2/2/2"));
  EXPECT_LT(panel.at("1/1/1/3"), panel.at("1/1/2/2"));
}

// Fig. 14(b): js = 0.0022 sits near the delta-growth fixed point
// (js*|R| = 0.88); the distribution effect is weakest there ("no clear
// impact").  Formalized as: the relative 2-site spread at 0.0022 is
// smaller than at 0.001 and at 0.005.
TEST(Fig14Regression, MidJsWeakensTheDistributionEffect) {
  auto two_site_spread = [](double js) {
    const auto panel = Fig14Panel(js);
    const double values[] = {panel.at("1/5"), panel.at("2/4"), panel.at("3/3")};
    const double lo = *std::min_element(std::begin(values), std::end(values));
    const double hi = *std::max_element(std::begin(values), std::end(values));
    return (hi - lo) / lo;
  };
  const double mid = two_site_spread(0.0022);
  EXPECT_LT(mid, two_site_spread(0.001));
  EXPECT_LT(mid, two_site_spread(0.005));
}

// §7.3's headline: the site count dominates the distribution effect; every
// 3-site group is costlier than every 2-site group at the default js=0.005
// sigma=0.5 configuration of Experiment 2.
TEST(Fig14Regression, SiteCountDominatesAtDefaults) {
  const UniformParams params;  // sigma = 0.5, js = 0.005.
  const CostModelOptions options = MakeUniformOptions(params);
  double max_two = 0;
  double min_three = 1e18;
  for (const DistributionGroup& group : GroupedCompositions(6, 2)) {
    max_two = std::max(max_two, GroupBytes(group, params, options));
  }
  for (const DistributionGroup& group : GroupedCompositions(6, 3)) {
    min_three = std::min(min_three, GroupBytes(group, params, options));
  }
  EXPECT_LT(max_two, min_three);
}

// Fig. 13's increments are exactly linear at Table-1 defaults (the
// sigma*js*|R| = 1 fixed point): +1.6 messages and +560 bytes per site.
TEST(Fig13Regression, LinearIncrements) {
  const UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  std::vector<double> msgs, bytes;
  for (int m = 1; m <= 6; ++m) {
    CostFactors sum;
    int n = 0;
    for (const std::vector<int>& dist : Compositions(6, m)) {
      const auto cf =
          SiteAveragedUpdateCost(MakeUniformInput(dist, params), options);
      ASSERT_TRUE(cf.ok());
      sum += *cf;
      ++n;
    }
    msgs.push_back(sum.messages / n);
    bytes.push_back(sum.bytes / n);
  }
  for (int m = 1; m < 6; ++m) {
    EXPECT_NEAR(msgs[m] - msgs[m - 1], 1.6, 1e-9);
    EXPECT_NEAR(bytes[m] - bytes[m - 1], 560.0, 1e-9);
  }
}

}  // namespace
}  // namespace eve
