// Information-space tests: source management, schema-change application
// (with data migration), data updates, site resolution, and the
// space-plus-MKB evolution contract.

#include <gtest/gtest.h>

#include "space/information_space.h"

namespace eve {
namespace {

Relation MakeR() {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64),
                            Attribute::Make("B", DataType::kInt64)}));
  for (int i = 0; i < 5; ++i) {
    rel.InsertUnchecked(Tuple{Value(i), Value(i * 10)});
  }
  return rel;
}

TEST(InformationSpace, AddAndResolve) {
  InformationSpace space;
  ASSERT_TRUE(space.AddRelation("IS1", MakeR()).ok());
  EXPECT_TRUE(space.HasSource("IS1"));
  EXPECT_EQ(space.SiteOf("R").value(), "IS1");
  EXPECT_FALSE(space.SiteOf("Q").ok());
  // Resolve by bare name and by qualified name.
  EXPECT_TRUE(space.Resolve("", "R").ok());
  EXPECT_TRUE(space.Resolve("IS1", "R").ok());
  EXPECT_FALSE(space.Resolve("IS2", "R").ok());
  // Duplicate bare names across sites are rejected.
  EXPECT_FALSE(space.AddRelation("IS2", MakeR()).ok());
}

TEST(InformationSpace, SchemaChangesMigrateData) {
  InformationSpace space;
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(space.AddRelation("IS1", MakeR(), &mkb).ok());

  // delete-attribute projects the stored tuples.
  ASSERT_TRUE(space
                  .ApplySchemaChange(
                      SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "B"}),
                      &mkb)
                  .ok());
  const Relation* r = space.Resolve("IS1", "R").value();
  EXPECT_EQ(r->schema().size(), 1);
  EXPECT_EQ(r->cardinality(), 5);
  EXPECT_FALSE(mkb.GetSchema(RelationId{"IS1", "R"})->Contains("B"));

  // add-attribute back-fills NULLs.
  ASSERT_TRUE(space
                  .ApplySchemaChange(
                      SchemaChange(AddAttribute{
                          RelationId{"IS1", "R"},
                          Attribute::Make("C", DataType::kInt64)}),
                      &mkb)
                  .ok());
  r = space.Resolve("IS1", "R").value();
  EXPECT_EQ(r->schema().size(), 2);
  EXPECT_TRUE(r->TupleAt(0).at(1).is_null());

  // rename-attribute and rename-relation.
  ASSERT_TRUE(space
                  .ApplySchemaChange(SchemaChange(RenameAttribute{
                                         RelationId{"IS1", "R"}, "C", "C2"}),
                                     &mkb)
                  .ok());
  EXPECT_TRUE(space.Resolve("IS1", "R").value()->schema().Contains("C2"));
  ASSERT_TRUE(space
                  .ApplySchemaChange(SchemaChange(RenameRelation{
                                         RelationId{"IS1", "R"}, "R9"}),
                                     &mkb)
                  .ok());
  EXPECT_TRUE(space.Resolve("IS1", "R9").ok());
  EXPECT_FALSE(space.Resolve("IS1", "R").ok());
  EXPECT_TRUE(mkb.HasRelation(RelationId{"IS1", "R9"}));

  // delete-relation.
  ASSERT_TRUE(space
                  .ApplySchemaChange(
                      SchemaChange(DeleteRelation{RelationId{"IS1", "R9"}}),
                      &mkb)
                  .ok());
  EXPECT_FALSE(space.Resolve("IS1", "R9").ok());
  EXPECT_FALSE(mkb.HasRelation(RelationId{"IS1", "R9"}));
}

TEST(InformationSpace, AddRelationChange) {
  InformationSpace space;
  MetaKnowledgeBase mkb;
  const Schema schema({Attribute::Make("X", DataType::kInt64)});
  ASSERT_TRUE(space
                  .ApplySchemaChange(
                      SchemaChange(AddRelation{RelationId{"IS1", "New"}, schema}),
                      &mkb)
                  .ok());
  EXPECT_TRUE(space.Resolve("IS1", "New").ok());
  EXPECT_TRUE(mkb.HasRelation(RelationId{"IS1", "New"}));
}

TEST(InformationSpace, DataUpdates) {
  InformationSpace space;
  ASSERT_TRUE(space.AddRelation("IS1", MakeR()).ok());
  DataUpdate insert{UpdateKind::kInsert, RelationId{"IS1", "R"},
                    Tuple{Value(100), Value(1000)}};
  ASSERT_TRUE(space.ApplyDataUpdate(insert).ok());
  EXPECT_EQ(space.Resolve("IS1", "R").value()->cardinality(), 6);

  DataUpdate remove{UpdateKind::kDelete, RelationId{"IS1", "R"},
                    Tuple{Value(100), Value(1000)}};
  ASSERT_TRUE(space.ApplyDataUpdate(remove).ok());
  EXPECT_EQ(space.Resolve("IS1", "R").value()->cardinality(), 5);
  // Deleting a missing tuple fails loudly.
  EXPECT_FALSE(space.ApplyDataUpdate(remove).ok());
  // Ill-typed insert rejected.
  DataUpdate bad{UpdateKind::kInsert, RelationId{"IS1", "R"}, Tuple{Value("x")}};
  EXPECT_FALSE(space.ApplyDataUpdate(bad).ok());
}

TEST(InformationSource, ChangeErrorCases) {
  InformationSource src("IS1");
  ASSERT_TRUE(src.AddRelation(MakeR()).ok());
  EXPECT_FALSE(src.DropRelation("Q").ok());
  EXPECT_FALSE(src.DropAttribute("R", "Z").ok());
  EXPECT_FALSE(src.RenameAttribute("R", "A", "B").ok());  // Target exists.
  EXPECT_FALSE(src.RenameRelation("R", "R").ok());
  // Dropping all attributes is refused.
  ASSERT_TRUE(src.DropAttribute("R", "B").ok());
  EXPECT_FALSE(src.DropAttribute("R", "A").ok());
}

TEST(SchemaChange, Printing) {
  EXPECT_EQ(SchemaChangeToString(
                SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "A"})),
            "delete-attribute IS1.R.A");
  EXPECT_EQ(SchemaChangeToString(
                SchemaChange(DeleteRelation{RelationId{"IS1", "R"}})),
            "delete-relation IS1.R");
  EXPECT_EQ(SchemaChangeToString(SchemaChange(RenameRelation{
                RelationId{"IS1", "R"}, "S"})),
            "change-relation-name IS1.R -> S");
}

}  // namespace
}  // namespace eve
