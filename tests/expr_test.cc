// Expression-layer tests: comparison operators, primitive clauses,
// substitution/renaming, bindings, evaluation, and selectivity measurement.

#include <gtest/gtest.h>

#include "expr/clause.h"
#include "expr/eval.h"
#include "expr/selectivity.h"

namespace eve {
namespace {

TEST(CompOp, RoundTripAndFlip) {
  for (CompOp op : {CompOp::kLess, CompOp::kLessEqual, CompOp::kEqual,
                    CompOp::kGreaterEqual, CompOp::kGreater, CompOp::kNotEqual}) {
    const auto parsed = CompOpFromString(CompOpToString(op));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, op);
    EXPECT_EQ(FlipCompOp(FlipCompOp(op)), op);
  }
  EXPECT_EQ(CompOpFromString("!="), CompOp::kNotEqual);
  EXPECT_FALSE(CompOpFromString("==").has_value());
}

TEST(CompOp, EvalSemantics) {
  EXPECT_TRUE(EvalCompOp(CompOp::kLess, Value(1), Value(2)));
  EXPECT_TRUE(EvalCompOp(CompOp::kLessEqual, Value(2), Value(2.0)));
  EXPECT_TRUE(EvalCompOp(CompOp::kEqual, Value(3), Value(3.0)));
  EXPECT_TRUE(EvalCompOp(CompOp::kNotEqual, Value("a"), Value("b")));
  // NULL and heterogeneous comparisons are false.
  EXPECT_FALSE(EvalCompOp(CompOp::kEqual, Value(), Value()));
  EXPECT_FALSE(EvalCompOp(CompOp::kLess, Value(1), Value("a")));
}

TEST(Clause, AttributesAndReferences) {
  const PrimitiveClause join = PrimitiveClause::AttrAttr(
      RelAttr{"R", "A"}, CompOp::kEqual, RelAttr{"S", "B"});
  EXPECT_TRUE(join.IsJoinClause());
  EXPECT_TRUE(join.References("R"));
  EXPECT_TRUE(join.References("S"));
  EXPECT_FALSE(join.References("T"));
  EXPECT_EQ(join.Attributes().size(), 2u);

  const PrimitiveClause local =
      PrimitiveClause::AttrConst(RelAttr{"R", "A"}, CompOp::kGreater, Value(10));
  EXPECT_FALSE(local.IsJoinClause());
  EXPECT_EQ(local.ToString(), "R.A > 10");
}

TEST(Clause, SubstituteAndRename) {
  const PrimitiveClause c = PrimitiveClause::AttrAttr(
      RelAttr{"R", "A"}, CompOp::kEqual, RelAttr{"S", "B"});
  const PrimitiveClause substituted =
      c.Substitute({{RelAttr{"R", "A"}, RelAttr{"T", "X"}}});
  EXPECT_EQ(substituted.lhs, (RelAttr{"T", "X"}));
  EXPECT_EQ(substituted.rhs_attr(), (RelAttr{"S", "B"}));

  const PrimitiveClause renamed = c.RenameRelations({{"S", "S2"}});
  EXPECT_EQ(renamed.rhs_attr().relation, "S2");
  EXPECT_EQ(renamed.lhs.relation, "R");
}

TEST(Conjunction, CollectsAttributesAndRelations) {
  Conjunction conj;
  conj.Add(PrimitiveClause::AttrAttr(RelAttr{"R", "A"}, CompOp::kEqual,
                                     RelAttr{"S", "A"}));
  conj.Add(PrimitiveClause::AttrConst(RelAttr{"S", "B"}, CompOp::kLess, Value(5)));
  EXPECT_EQ(conj.Relations(), (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(conj.Attributes().size(), 3u);
  EXPECT_EQ(conj.ToString(), "R.A = S.A AND S.B < 5");
  EXPECT_TRUE(Conjunction().IsTrue());
  EXPECT_EQ(Conjunction().ToString(), "TRUE");
}

TEST(Binding, RegisterResolveAmbiguity) {
  Binding binding;
  ASSERT_TRUE(binding.Register(RelAttr{"R", "A"}, 0).ok());
  ASSERT_TRUE(binding.Register(RelAttr{"S", "A"}, 1).ok());
  ASSERT_TRUE(binding.Register(RelAttr{"S", "B"}, 2).ok());
  EXPECT_FALSE(binding.Register(RelAttr{"R", "A"}, 3).ok());  // Duplicate.

  EXPECT_EQ(binding.Resolve(RelAttr{"S", "B"}).value(), 2);
  // Unqualified "B" is unique; unqualified "A" is ambiguous.
  EXPECT_EQ(binding.Resolve(RelAttr{"", "B"}).value(), 2);
  EXPECT_FALSE(binding.Resolve(RelAttr{"", "A"}).ok());
  EXPECT_FALSE(binding.Resolve(RelAttr{"T", "A"}).ok());
}

TEST(Eval, BoundConjunction) {
  Binding binding;
  ASSERT_TRUE(binding.Register(RelAttr{"R", "A"}, 0).ok());
  ASSERT_TRUE(binding.Register(RelAttr{"R", "B"}, 1).ok());
  Conjunction conj;
  conj.Add(PrimitiveClause::AttrConst(RelAttr{"R", "A"}, CompOp::kGreaterEqual,
                                      Value(10)));
  conj.Add(PrimitiveClause::AttrAttr(RelAttr{"R", "A"}, CompOp::kLess,
                                     RelAttr{"R", "B"}));
  EXPECT_TRUE(EvalConjunction(conj, binding, Tuple{Value(10), Value(20)}).value());
  EXPECT_FALSE(EvalConjunction(conj, binding, Tuple{Value(9), Value(20)}).value());
  EXPECT_FALSE(EvalConjunction(conj, binding, Tuple{Value(30), Value(20)}).value());
}

TEST(Selectivity, MeasuredFractionsMatch) {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64)}));
  for (int i = 0; i < 100; ++i) rel.InsertUnchecked(Tuple{Value(i)});
  Conjunction half;
  half.Add(PrimitiveClause::AttrConst(RelAttr{"R", "A"}, CompOp::kLess, Value(50)));
  EXPECT_DOUBLE_EQ(MeasureSelectivity(rel, "R", half).value(), 0.5);
  EXPECT_DOUBLE_EQ(MeasureSelectivity(rel, "R", Conjunction()).value(), 1.0);
  Conjunction none;
  none.Add(PrimitiveClause::AttrConst(RelAttr{"R", "A"}, CompOp::kLess, Value(0)));
  EXPECT_DOUBLE_EQ(MeasureSelectivity(rel, "R", none).value(), 0.0);
}

}  // namespace
}  // namespace eve
