// Tests of the analytic cost model (paper §6) against the paper's own
// numbers:
//  * Table 6 / Fig. 13: per-update CF_M, CF_T, CF_IO for the uniform
//    6-relation information space of Table 1, averaged over the relation
//    distributions of Table 2;
//  * Experiment 4: per-update costs 842.3 .. 2246.3 for the S1..S5
//    replacements (upper I/O bound);
//  * the closed-form message count of §6.2;
//  * workload models M1-M4.

#include <gtest/gtest.h>

#include "bench_util/distributions.h"
#include "bench_util/experiment_common.h"
#include "qc/cost_model.h"
#include "qc/workload.h"

namespace eve {
namespace {

UniformParams PaperParams() { return UniformParams{}; }

TEST(MessagesClosedForm, Section62Cases) {
  EXPECT_EQ(MessagesClosedForm(1, 0), 0);
  EXPECT_EQ(MessagesClosedForm(1, 5), 2);
  EXPECT_EQ(MessagesClosedForm(3, 0), 4);   // 2(m-1)
  EXPECT_EQ(MessagesClosedForm(3, 2), 6);   // 2m
  EXPECT_EQ(MessagesClosedForm(6, 0), 10);
}

TEST(SingleUpdateCost, SingleSiteAllRelations) {
  // All 6 relations at one site; update at any of them: notification (1) +
  // one query/answer round trip (2) = 3 messages; bytes 100 + 100 + 600.
  const ViewCostInput input = MakeUniformInput({6}, PaperParams());
  const CostModelOptions options = MakeUniformOptions(PaperParams());
  const auto cf = SingleUpdateCost(input, 0, options);
  ASSERT_TRUE(cf.ok());
  EXPECT_DOUBLE_EQ(cf->messages, 3.0);
  EXPECT_DOUBLE_EQ(cf->bytes, 800.0);
  // I/O: joins i=1..5 cost min(40, 2^{i-1}) = 1+2+4+8+16 = 31 (Eq. 33 lower).
  EXPECT_DOUBLE_EQ(cf->ios, 31.0);
}

TEST(SingleUpdateCost, SixSitesOneRelationEach) {
  const ViewCostInput input = MakeUniformInput({1, 1, 1, 1, 1, 1}, PaperParams());
  const CostModelOptions options = MakeUniformOptions(PaperParams());
  const auto cf = SingleUpdateCost(input, 0, options);
  ASSERT_TRUE(cf.ok());
  // Origin hosts nothing else -> skipped; 5 sites queried.
  EXPECT_DOUBLE_EQ(cf->messages, 11.0);
  EXPECT_DOUBLE_EQ(cf->bytes, 3600.0);
  EXPECT_DOUBLE_EQ(cf->ios, 31.0);
}

// Table 6: per-update averages over Table 2's distributions: CF_M rises
// 3, 4.6, 6.2, 7.8, 9.4, 11 and CF_T rises 800, 1360, 1920, 2480, 3040,
// 3600; CF_IO is constant 31.
struct Table6Row {
  int sites;
  double cf_m;
  double cf_t;
  double cf_io;
};

class Table6Test : public ::testing::TestWithParam<Table6Row> {};

TEST_P(Table6Test, PerUpdateSiteAveragedCosts) {
  const Table6Row row = GetParam();
  const CostModelOptions options = MakeUniformOptions(PaperParams());
  CostFactors sum;
  int count = 0;
  for (const std::vector<int>& dist : Compositions(6, row.sites)) {
    const ViewCostInput input = MakeUniformInput(dist, PaperParams());
    const auto cf = SiteAveragedUpdateCost(input, options);
    ASSERT_TRUE(cf.ok());
    sum += *cf;
    ++count;
  }
  ASSERT_GT(count, 0);
  EXPECT_NEAR(sum.messages / count, row.cf_m, 1e-9);
  EXPECT_NEAR(sum.bytes / count, row.cf_t, 1e-9);
  EXPECT_NEAR(sum.ios / count, row.cf_io, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PaperTable6, Table6Test,
                         ::testing::Values(Table6Row{1, 3.0, 800.0, 31.0},
                                           Table6Row{2, 4.6, 1360.0, 31.0},
                                           Table6Row{3, 6.2, 1920.0, 31.0},
                                           Table6Row{4, 7.8, 2480.0, 31.0},
                                           Table6Row{5, 9.4, 3040.0, 31.0},
                                           Table6Row{6, 11.0, 3600.0, 31.0}));

// Experiment 4: V = R1 join S_i, R1 (400 tuples) at IS_a, S_i at IS_b,
// update at R1, local selectivity 0.5 on S_i, js = 0.005, unit costs
// (0.1, 0.7, 0.2).  Per-update weighted costs: 842.3, 1193.3, 1544.3,
// 1895.3, 2246.3 (paper Table 4), with the Eq. 33 *upper* I/O bound.
struct Exp4Row {
  int64_t replacement_card;
  double weighted_cost;
};

class Exp4CostTest : public ::testing::TestWithParam<Exp4Row> {};

TEST_P(Exp4CostTest, WeightedSingleUpdateCost) {
  const Exp4Row row = GetParam();
  ViewCostInput input;
  input.join_selectivity = 0.005;
  input.relations.push_back(
      CostRelation{RelationId{"IS_a", "R1"}, 400, 100, 1.0});
  input.relations.push_back(
      CostRelation{RelationId{"IS_b", "S"}, row.replacement_card, 100, 0.5});
  CostModelOptions options;
  options.io_policy = IoBoundPolicy::kUpper;
  options.block.block_bytes = 1000;

  const auto cf = SingleUpdateCost(input, 0, options);
  ASSERT_TRUE(cf.ok());
  QcParameters params;  // cost_message=0.1, cost_transfer=0.7, cost_io=0.2.
  EXPECT_NEAR(cf->Weighted(params), row.weighted_cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PaperTable4Costs, Exp4CostTest,
                         ::testing::Values(Exp4Row{2000, 842.3},
                                           Exp4Row{3000, 1193.3},
                                           Exp4Row{4000, 1544.3},
                                           Exp4Row{5000, 1895.3},
                                           Exp4Row{6000, 2246.3}));

TEST(SingleUpdateCost, IoBoundsBracket) {
  // The lower bound never exceeds the upper bound.
  const UniformParams params = PaperParams();
  for (const std::vector<int>& dist :
       {std::vector<int>{6}, {3, 3}, {1, 2, 3}, {1, 1, 1, 1, 1, 1}}) {
    const ViewCostInput input = MakeUniformInput(dist, params);
    const auto lower = SingleUpdateCost(
        input, 0, MakeUniformOptions(params, IoBoundPolicy::kLower));
    const auto upper = SingleUpdateCost(
        input, 0, MakeUniformOptions(params, IoBoundPolicy::kUpper));
    ASSERT_TRUE(lower.ok() && upper.ok());
    EXPECT_LE(lower->ios, upper->ios) << DistributionLabel(dist);
    // Messages and bytes do not depend on the I/O policy.
    EXPECT_DOUBLE_EQ(lower->messages, upper->messages);
    EXPECT_DOUBLE_EQ(lower->bytes, upper->bytes);
  }
}

TEST(SingleUpdateCost, NotificationFlag) {
  const ViewCostInput input = MakeUniformInput({3, 3}, PaperParams());
  CostModelOptions with = MakeUniformOptions(PaperParams());
  CostModelOptions without = with;
  without.count_notification_message = false;
  const auto a = SingleUpdateCost(input, 0, with);
  const auto b = SingleUpdateCost(input, 0, without);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->messages - 1.0, b->messages);
  EXPECT_DOUBLE_EQ(a->bytes, b->bytes);  // Bytes always include Eq. 21's s.
}

TEST(SingleUpdateCost, InvalidIndexRejected) {
  const ViewCostInput input = MakeUniformInput({6}, PaperParams());
  EXPECT_FALSE(SingleUpdateCost(input, 99, {}).ok());
}

TEST(WorkloadCost, M4WithOneUpdateMatchesAverageSingleUpdate) {
  const ViewCostInput input = MakeUniformInput({3, 3}, PaperParams());
  const CostModelOptions options = MakeUniformOptions(PaperParams());
  WorkloadOptions workload;
  workload.model = WorkloadModel::kM4FixedPerView;
  workload.updates_per_view = 1.0;
  const auto total = ComputeWorkloadCost(input, workload, options);
  ASSERT_TRUE(total.ok());

  CostFactors expected;
  for (size_t i = 0; i < input.relations.size(); ++i) {
    expected += SingleUpdateCost(input, i, options).value() *
                (1.0 / input.relations.size());
  }
  EXPECT_NEAR(total->factors.messages, expected.messages, 1e-9);
  EXPECT_NEAR(total->factors.bytes, expected.bytes, 1e-9);
  EXPECT_NEAR(total->updates, 1.0, 1e-12);
}

TEST(WorkloadCost, M1ScalesWithCardinality) {
  // Two relations, one twice the size: it receives twice the updates.
  ViewCostInput input;
  input.join_selectivity = 0.01;
  input.relations.push_back(CostRelation{RelationId{"A", "R"}, 100, 100, 1.0});
  input.relations.push_back(CostRelation{RelationId{"B", "S"}, 200, 100, 1.0});
  WorkloadOptions workload;
  workload.model = WorkloadModel::kM1ProportionalToSize;
  workload.updates_per_tuple = 0.01;
  const auto total = ComputeWorkloadCost(input, workload, {});
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(total->updates, 3.0, 1e-12);  // 1 + 2 updates.
}

TEST(WorkloadCost, M3CountsPerSite) {
  const ViewCostInput input = MakeUniformInput({2, 4}, PaperParams());
  WorkloadOptions workload;
  workload.model = WorkloadModel::kM3PerSite;
  workload.updates_per_site = 10.0;
  const auto total =
      ComputeWorkloadCost(input, workload, MakeUniformOptions(PaperParams()));
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(total->updates, 20.0, 1e-12);  // 2 sites x 10.
}

TEST(WorkloadCost, M2CountsPerRelation) {
  const ViewCostInput input = MakeUniformInput({2, 4}, PaperParams());
  WorkloadOptions workload;
  workload.model = WorkloadModel::kM2PerRelation;
  workload.updates_per_relation = 2.0;
  const auto total =
      ComputeWorkloadCost(input, workload, MakeUniformOptions(PaperParams()));
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(total->updates, 12.0, 1e-12);  // 6 relations x 2.
}

// Table 6 totals under M3 with 10 updates/site: the six-relation view over
// m sites faces 10m updates; totals match the paper exactly.
TEST(WorkloadCost, PaperTable6Totals) {
  const struct {
    int sites;
    double updates, cf_m, cf_t, cf_io;
  } rows[] = {
      {1, 10, 30, 8000, 310},      {2, 20, 92, 27200, 620},
      {3, 30, 186, 57600, 930},    {4, 40, 312, 99200, 1240},
      {5, 50, 470, 152000, 1550},  {6, 60, 660, 216000, 1860},
  };
  const CostModelOptions options = MakeUniformOptions(PaperParams());
  WorkloadOptions workload;
  workload.model = WorkloadModel::kM3PerSite;
  workload.updates_per_site = 10.0;
  for (const auto& row : rows) {
    // Average the workload totals over all distributions for this m.
    double n = 0, m_sum = 0, t_sum = 0, io_sum = 0, u_sum = 0;
    for (const std::vector<int>& dist : Compositions(6, row.sites)) {
      const ViewCostInput input = MakeUniformInput(dist, PaperParams());
      const auto total = ComputeWorkloadCost(input, workload, options);
      ASSERT_TRUE(total.ok());
      m_sum += total->factors.messages;
      t_sum += total->factors.bytes;
      io_sum += total->factors.ios;
      u_sum += total->updates;
      n += 1;
    }
    EXPECT_NEAR(u_sum / n, row.updates, 1e-9) << "m=" << row.sites;
    EXPECT_NEAR(m_sum / n, row.cf_m, 1e-9) << "m=" << row.sites;
    EXPECT_NEAR(t_sum / n, row.cf_t, 1e-9) << "m=" << row.sites;
    EXPECT_NEAR(io_sum / n, row.cf_io, 1e-9) << "m=" << row.sites;
  }
}

}  // namespace
}  // namespace eve
