// Tests for the prepared-view planning layer: executing a prepared plan
// (once or repeatedly) must match the reference executor; plans must
// detect relation mutation/replacement through Validate; and the PlanCache
// must reuse, revalidate, and evict correctly -- including the
// schema-change epoch clear wired into EveSystem.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "algebra/executor.h"
#include "common/random.h"
#include "esql/parser.h"
#include "eve/eve_system.h"
#include "plan/plan_cache.h"
#include "plan/planner.h"
#include "storage/generator.h"
#include "storage/hash_index.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<int>>& rows) {
  std::vector<Attribute> schema;
  for (const std::string& a : attrs) {
    schema.push_back(Attribute::Make(a, DataType::kInt64, 10));
  }
  Relation rel(name, Schema(std::move(schema)));
  for (const auto& row : rows) {
    Tuple t;
    for (int v : row) t.Append(Value(static_cast<int64_t>(v)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

std::vector<Tuple> SortedTuples(const Relation& rel) {
  std::vector<Tuple> tuples = rel.CopyTuples();
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

// Prepares `view` under every option combination and executes each plan
// twice (testing reuse), checking both executions against the reference.
void ExpectPreparedMatchesReference(const ViewDefinition& view,
                                    const RelationProvider& provider,
                                    bool distinct = true) {
  ExecOptions ref_opts;
  ref_opts.distinct = distinct;
  const auto reference = ExecuteViewReference(view, provider, ref_opts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const bool reorder : {false, true}) {
    for (const bool cache : {false, true}) {
      ExecOptions opts;
      opts.distinct = distinct;
      opts.reorder_joins = reorder;
      opts.use_index_cache = cache;
      const auto plan = PrepareView(view, provider, opts);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      EXPECT_TRUE((*plan)->Validate(provider));
      for (int round = 0; round < 2; ++round) {
        const auto result = ExecutePrepared(**plan);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(result->schema().ToString(), reference->schema().ToString());
        EXPECT_EQ(SortedTuples(*result), SortedTuples(*reference))
            << "round=" << round << " reorder=" << reorder
            << " cache=" << cache << "\nprepared:\n"
            << result->ToString() << "reference:\n"
            << reference->ToString();
      }
    }
  }
}

TEST(PreparedView, MatchesReferenceOnCorpus) {
  MapProvider provider;
  ASSERT_TRUE(provider
                  .Add(MakeRelation("R", {"K", "X"},
                                    {{1, 7}, {2, 8}, {3, 9}, {1, 6}}))
                  .ok());
  ASSERT_TRUE(provider
                  .Add(MakeRelation("S", {"K", "Y"},
                                    {{1, 9}, {2, 10}, {3, 11}, {3, 12}}))
                  .ok());
  ASSERT_TRUE(
      provider.Add(MakeRelation("T", {"K", "Z"}, {{1, 11}, {3, 13}})).ok());

  for (const bool distinct : {true, false}) {
    // Single relation + selection.
    ExpectPreparedMatchesReference(
        Parse("CREATE VIEW V AS SELECT R.X FROM R WHERE R.K >= 2"), provider,
        distinct);
    // Multi-join with aliases and a local selection.
    ExpectPreparedMatchesReference(
        Parse("CREATE VIEW V AS SELECT a.X, b.Y, c.Z FROM R a, S b, T c "
              "WHERE (a.K = b.K) AND (b.K = c.K) AND (b.Y >= 9)"),
        provider, distinct);
    // Theta join.
    ExpectPreparedMatchesReference(
        Parse("CREATE VIEW V AS SELECT R.X, S.Y FROM R, S WHERE R.K < S.K"),
        provider, distinct);
    // Cross product.
    ExpectPreparedMatchesReference(
        Parse("CREATE VIEW V AS SELECT R.K, T.Z FROM R, T"), provider,
        distinct);
    // Empty result (selection empties the driver).
    ExpectPreparedMatchesReference(
        Parse("CREATE VIEW V AS SELECT R.X, S.Y FROM R, S "
              "WHERE (R.K > 100) AND (R.K = S.K)"),
        provider, distinct);
  }
}

TEST(PreparedView, MatchesReferenceOnRandomizedJoins) {
  Random rng(33);
  for (int round = 0; round < 4; ++round) {
    GeneratorOptions gen;
    gen.cardinality = 40 + 10 * round;
    gen.num_attributes = 2;
    gen.key_domain = 8 + round;
    gen.value_domain = 40;
    MapProvider provider;
    for (const char* name : {"R", "S", "T", "U"}) {
      ASSERT_TRUE(provider.Add(GenerateRelation(name, gen, &rng)).ok());
    }
    ExpectPreparedMatchesReference(
        Parse("CREATE VIEW V AS SELECT R.A, S.B, T.B AS TB, U.B AS UB "
              "FROM R, S, T, U WHERE (R.A = S.A) AND (S.A = T.A) "
              "AND (T.A = U.A) AND (R.B >= 10)"),
        provider, round % 2 == 0);
  }
}

TEST(PreparedView, ValidateDetectsMutationAndReplacement) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}, {2}})).ok());
  ASSERT_TRUE(
      provider.Add(MakeRelation("S", {"A", "B"}, {{1, 5}, {2, 6}})).ok());
  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.A, S.B FROM R, S WHERE R.A = S.A");

  const auto plan = PrepareView(view, provider);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->Validate(provider));

  // Mutation through the provider invalidates (version changes).
  auto resolved = provider.Resolve("", "S");
  ASSERT_TRUE(resolved.ok());
  const_cast<Relation*>(resolved.value())
      ->InsertUnchecked(
          Tuple{Value(static_cast<int64_t>(2)), Value(static_cast<int64_t>(7))});
  EXPECT_FALSE((*plan)->Validate(provider));

  // A fresh plan sees the new tuple.
  const auto replanned = PrepareView(view, provider);
  ASSERT_TRUE(replanned.ok());
  const auto result = ExecutePrepared(**replanned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cardinality(), 3);
}

TEST(PreparedView, StalePushdownWouldBeWrongWithoutRevalidation) {
  // The pushdown row-id lists snapshot relation contents; this documents
  // why ExecutePrepared must not run against a mutated relation and why
  // PlanCache revalidates.  After an insert that satisfies the local
  // predicate, the stale plan misses the row while a replanned one sees it.
  MapProvider provider;
  ASSERT_TRUE(
      provider.Add(MakeRelation("R", {"A", "B"}, {{1, 10}, {2, 20}})).ok());
  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.B FROM R WHERE R.A >= 2");

  const auto stale = PrepareView(view, provider);
  ASSERT_TRUE(stale.ok());

  auto resolved = provider.Resolve("", "R");
  ASSERT_TRUE(resolved.ok());
  const_cast<Relation*>(resolved.value())
      ->InsertUnchecked(Tuple{Value(static_cast<int64_t>(3)),
                              Value(static_cast<int64_t>(30))});

  EXPECT_FALSE((*stale)->Validate(provider));
  const auto fresh = PrepareView(view, provider);
  ASSERT_TRUE(fresh.ok());
  const auto result = ExecutePrepared(**fresh);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cardinality(), 2);
  EXPECT_TRUE(result->ContainsTuple(Tuple{Value(static_cast<int64_t>(30))}));
}

TEST(PlanCache, ReusesUntilMutationThenReplans) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}, {2}})).ok());
  ASSERT_TRUE(
      provider.Add(MakeRelation("S", {"A", "B"}, {{1, 5}, {2, 6}})).ok());
  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.A, S.B FROM R, S WHERE R.A = S.A");

  PlanCache cache;
  const auto first = cache.Execute(view, provider);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cardinality(), 2);
  const auto second = cache.Execute(view, provider);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().replans, 0);
  EXPECT_EQ(cache.size(), 1);

  // The same plan object is handed out on a hit.
  const auto plan_a = cache.Get(view, provider);
  const auto plan_b = cache.Get(view, provider);
  ASSERT_TRUE(plan_a.ok() && plan_b.ok());
  EXPECT_EQ(plan_a->get(), plan_b->get());

  // Relation mutation: next Execute revalidates, replans, and sees the row.
  auto resolved = provider.Resolve("", "S");
  ASSERT_TRUE(resolved.ok());
  const_cast<Relation*>(resolved.value())
      ->InsertUnchecked(
          Tuple{Value(static_cast<int64_t>(2)), Value(static_cast<int64_t>(7))});
  const auto after = cache.Execute(view, provider);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->cardinality(), 3);
  EXPECT_EQ(cache.stats().replans, 1);
  EXPECT_EQ(cache.size(), 1);
}

TEST(PlanCache, OptionsAndDefinitionsKeySeparateEntries) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}, {1}, {2}})).ok());
  PlanCache cache;

  ExecOptions bag;
  bag.distinct = false;
  ASSERT_TRUE(cache.Execute(Parse("CREATE VIEW V AS SELECT R.A FROM R"),
                            provider)
                  .ok());
  ASSERT_TRUE(cache.Execute(Parse("CREATE VIEW V AS SELECT R.A FROM R"),
                            provider, bag)
                  .ok());
  // Same name, different WHERE: a third entry (evolved definitions must
  // not collide with their predecessors).
  ASSERT_TRUE(
      cache.Execute(Parse("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A >= 2"),
                    provider)
          .ok());
  EXPECT_EQ(cache.size(), 3);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
}

TEST(PlanCache, LruEvictionBoundsSize) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}, {2}, {3}})).ok());
  PlanCache cache(/*capacity=*/2);
  EXPECT_EQ(cache.capacity(), 2);

  const ViewDefinition v1 = Parse("CREATE VIEW V1 AS SELECT R.A FROM R");
  const ViewDefinition v2 =
      Parse("CREATE VIEW V2 AS SELECT R.A FROM R WHERE R.A >= 2");
  const ViewDefinition v3 =
      Parse("CREATE VIEW V3 AS SELECT R.A FROM R WHERE R.A >= 3");

  ASSERT_TRUE(cache.Get(v1, provider).ok());
  ASSERT_TRUE(cache.Get(v2, provider).ok());
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.stats().evictions, 0);

  // Touch v1 so v2 becomes the least recently used, then overflow with v3.
  ASSERT_TRUE(cache.Get(v1, provider).ok());
  ASSERT_TRUE(cache.Get(v3, provider).ok());
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.stats().evictions, 1);

  // v1 and v3 are still cached (hits); v2 was evicted (miss on return).
  const int64_t hits_before = cache.stats().hits;
  ASSERT_TRUE(cache.Get(v1, provider).ok());
  ASSERT_TRUE(cache.Get(v3, provider).ok());
  EXPECT_EQ(cache.stats().hits, hits_before + 2);
  const int64_t misses_before = cache.stats().misses;
  ASSERT_TRUE(cache.Get(v2, provider).ok());
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
  EXPECT_EQ(cache.stats().evictions, 2);
}

TEST(PlanCache, SnapshotEpochFastPathSkipsValidationAndCountsReplans) {
  EveSystem system;
  Relation r = MakeRelation("R", {"A", "B"}, {{1, 10}, {2, 20}});
  ASSERT_TRUE(system.RegisterRelation("IS1", std::move(r)).ok());
  const ViewDefinition view = Parse("CREATE VIEW Q AS SELECT R.A, R.B FROM R");

  PlanCache cache;
  const std::shared_ptr<const SystemSnapshot> snap1 =
      system.snapshots().Current();
  ASSERT_NE(snap1, nullptr);
  ASSERT_NE(snap1->SnapshotEpoch(), 0u);

  ASSERT_TRUE(cache.Execute(view, *snap1).ok());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().snapshot_hits, 0);

  // Same pinned epoch: the entry cannot have gone stale, so repeats take
  // the fast path that skips per-relation Validate.
  ASSERT_TRUE(cache.Execute(view, *snap1).ok());
  ASSERT_TRUE(cache.Execute(view, *snap1).ok());
  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.stats().snapshot_hits, 2);
  EXPECT_EQ(cache.stats().replans, 0);

  // A mutation publishes a new epoch; executing against it replans, and
  // the staleness is attributed to the epoch swap.
  ASSERT_TRUE(system
                  .NotifyDataUpdate(DataUpdate{
                      UpdateKind::kInsert, RelationId{"IS1", "R"},
                      Tuple{Value(static_cast<int64_t>(3)),
                            Value(static_cast<int64_t>(30))}})
                  .ok());
  const std::shared_ptr<const SystemSnapshot> snap2 =
      system.snapshots().Current();
  ASSERT_NE(snap2, nullptr);
  EXPECT_NE(snap2->SnapshotEpoch(), snap1->SnapshotEpoch());
  const auto after = cache.Execute(view, *snap2);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->cardinality(), 3);
  EXPECT_EQ(cache.stats().replans, 1);
  EXPECT_EQ(cache.stats().epoch_replans, 1);

  // The refreshed entry serves the new epoch from the fast path again.
  ASSERT_TRUE(cache.Execute(view, *snap2).ok());
  EXPECT_EQ(cache.stats().snapshot_hits, 3);

  // Non-snapshot providers (epoch 0) never take the fast path.
  MapProvider plain;
  ASSERT_TRUE(
      plain.Add(MakeRelation("R", {"A", "B"}, {{1, 10}, {2, 20}})).ok());
  PlanCache uncached;
  ASSERT_TRUE(uncached.Execute(view, plain).ok());
  ASSERT_TRUE(uncached.Execute(view, plain).ok());
  EXPECT_EQ(uncached.stats().hits, 1);
  EXPECT_EQ(uncached.stats().snapshot_hits, 0);
}

TEST(EveSystemPlanCache, MaterializationPopulatesAndSchemaChangeClears) {
  EveSystem system;
  Relation r = MakeRelation("R", {"A", "B"}, {{1, 10}, {2, 20}});
  ASSERT_TRUE(system.RegisterRelation("IS1", std::move(r)).ok());
  ASSERT_TRUE(
      system.DefineView("CREATE VIEW V AS SELECT R.A, R.B FROM R").ok());
  EXPECT_EQ(system.plan_cache().size(), 1);
  EXPECT_EQ(system.plan_cache().stats().misses, 1);

  // Deleting R kills the view (no constraints license a replacement): no
  // rematerialization happens, so the epoch clear is observable.
  const auto report = system.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->views.size(), 1u);
  EXPECT_EQ(report->views[0].resulting_state, ViewState::kDead);
  EXPECT_EQ(system.plan_cache().size(), 0);
}

TEST(EveSystemPlanCache, DataUpdateRevalidatesOnRematerialization) {
  EveSystem system;
  Relation r = MakeRelation("R", {"A", "B"}, {{1, 10}, {2, 20}});
  ASSERT_TRUE(system.RegisterRelation("IS1", std::move(r)).ok());
  ASSERT_TRUE(
      system.DefineView("CREATE VIEW V AS SELECT R.A, R.B FROM R").ok());

  // The maintainer updates the extent incrementally; a later view
  // definition (rematerialization path) must replan against the mutated
  // relation rather than reuse the stale pushdown snapshot.
  const auto counters = system.NotifyDataUpdate(
      DataUpdate{UpdateKind::kInsert, RelationId{"IS1", "R"},
                 Tuple{Value(static_cast<int64_t>(3)),
                       Value(static_cast<int64_t>(30))}});
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  const auto extent = system.GetViewExtent("V");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->cardinality(), 3);

  ASSERT_TRUE(
      system.DefineView("CREATE VIEW W AS SELECT R.B FROM R WHERE R.A >= 3")
          .ok());
  const auto w = system.GetViewExtent("W");
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->cardinality(), 1);
  EXPECT_TRUE(w->ContainsTuple(Tuple{Value(static_cast<int64_t>(30))}));
}

TEST(WarmIndexes, PrebuildsAndIgnoresOutOfRange) {
  Relation rel = MakeRelation("R", {"A", "B"}, {{1, 10}, {2, 20}, {1, 30}});
  rel.WarmIndexes({0, 1, -3, 99});  // Out-of-range columns are ignored.
  const HashIndex& a = rel.Index(0);
  const HashIndex& b = rel.Index(1);
  EXPECT_EQ(a.Lookup(Value(static_cast<int64_t>(1))).size(), 2u);
  EXPECT_EQ(b.Lookup(Value(static_cast<int64_t>(20))).size(), 1u);
  // Warmed instances are the cached ones.
  EXPECT_EQ(&rel.Index(0), &a);
  EXPECT_EQ(&rel.Index(1), &b);
}

}  // namespace
}  // namespace eve
