// Unit tests for the copy-on-write view editing layer (esql/view_delta.h):
// RewriteDelta application order, stable-id semantics for appended items,
// DeltaView parity with the materialized definition (queries, Validate,
// StructuralHash), and the candidate's lazy one-shot materialization.

#include <gtest/gtest.h>

#include "esql/parser.h"
#include "esql/printer.h"
#include "esql/view_delta.h"
#include "synch/partial.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

const ViewDefinition kBase = Parse(
    "CREATE VIEW V AS SELECT R.A, R.B (AD=true), S.C AS X (AR=true) "
    "FROM R, S (RD=true) WHERE (R.A = S.A) (CR=true) AND (R.B > 5) (CD=true)");

ConditionItem MakeCondition(const std::string& rel, const std::string& attr,
                            int64_t value) {
  ConditionItem ci;
  ci.clause = PrimitiveClause::AttrConst(RelAttr{rel, attr}, CompOp::kEqual,
                                         Value(value));
  return ci;
}

TEST(RewriteDelta, DropSelectHidesItemAndKeepsOrder) {
  std::vector<RewriteDelta> ops{RewriteDelta::DropSelect(1)};
  const ViewDefinition out = kBase.Apply(ops);
  ASSERT_EQ(out.select_items.size(), 2u);
  EXPECT_EQ(out.select_items[0].name(), "A");
  EXPECT_EQ(out.select_items[1].name(), "X");
  EXPECT_EQ(out.from_items, kBase.from_items);
  EXPECT_EQ(out.where, kBase.where);
}

TEST(RewriteDelta, SetOverridesInPlace) {
  SelectItem ns = kBase.select_items[0];
  ns.source = RelAttr{"R", "Z"};
  std::vector<RewriteDelta> ops{RewriteDelta::SetSelect(0, ns)};
  const ViewDefinition out = kBase.Apply(ops);
  EXPECT_EQ(out.select_items[0].source.attribute, "Z");
  EXPECT_EQ(out.select_items[1], kBase.select_items[1]);  // Untouched.
}

TEST(RewriteDelta, ApplicationOrderMatters) {
  // Set then drop hides the override; drop then set (on the same id) keeps
  // the slot hidden too -- but setting a *different* item after a drop
  // leaves both effects in place, in op order.
  SelectItem ns = kBase.select_items[2];
  ns.output_name = "Y";
  const ViewDefinition set_then_drop = kBase.Apply(std::vector<RewriteDelta>{
      RewriteDelta::SetSelect(2, ns), RewriteDelta::DropSelect(2)});
  EXPECT_EQ(set_then_drop.select_items.size(), 2u);
  EXPECT_EQ(set_then_drop.FindSelect("Y"), nullptr);

  const ViewDefinition drop_then_set = kBase.Apply(std::vector<RewriteDelta>{
      RewriteDelta::DropSelect(0), RewriteDelta::SetSelect(2, ns)});
  ASSERT_EQ(drop_then_set.select_items.size(), 2u);
  EXPECT_EQ(drop_then_set.select_items[1].name(), "Y");

  // Two Sets on one id: the later op wins.
  SelectItem ns2 = kBase.select_items[2];
  ns2.output_name = "Z";
  const ViewDefinition twice = kBase.Apply(std::vector<RewriteDelta>{
      RewriteDelta::SetSelect(2, ns), RewriteDelta::SetSelect(2, ns2)});
  EXPECT_EQ(twice.select_items[2].name(), "Z");
}

TEST(RewriteDelta, AppendedItemsGetStableIdsPastBaseSize) {
  // base has 2 conditions -> the first append takes id 2 and can be edited
  // and dropped through that id by later ops.
  std::vector<RewriteDelta> ops{
      RewriteDelta::AddCondition(MakeCondition("R", "A", 1)),
      RewriteDelta::AddCondition(MakeCondition("R", "A", 2))};
  DeltaView view(kBase, ops);
  ASSERT_EQ(view.where_size(), 4);
  EXPECT_EQ(view.where_id(2), 2);
  EXPECT_EQ(view.where_id(3), 3);

  ops.push_back(RewriteDelta::SetCondition(2, MakeCondition("R", "A", 9)));
  ops.push_back(RewriteDelta::DropCondition(3));
  const ViewDefinition out = kBase.Apply(ops);
  ASSERT_EQ(out.where.size(), 3u);
  EXPECT_EQ(out.where[2].clause.ToString(), "R.A = 9");
}

TEST(RewriteDelta, ReplaceFromKeepsPositionAddFromAppends) {
  FromItem nf = kBase.from_items[0];
  nf.relation = "T";
  FromItem extra;
  extra.relation = "U";
  const ViewDefinition out = kBase.Apply(std::vector<RewriteDelta>{
      RewriteDelta::ReplaceFrom(0, nf), RewriteDelta::AddFrom(extra)});
  ASSERT_EQ(out.from_items.size(), 3u);
  EXPECT_EQ(out.from_items[0].relation, "T");
  EXPECT_EQ(out.from_items[1].relation, "S");
  EXPECT_EQ(out.from_items[2].relation, "U");
}

TEST(DeltaView, QueriesMatchMaterializedDefinition) {
  FromItem aux;
  aux.relation = "U";
  std::vector<RewriteDelta> ops{
      RewriteDelta::DropSelect(1),
      RewriteDelta::DropCondition(1),
      RewriteDelta::AddFrom(aux),
      RewriteDelta::AddCondition(MakeCondition("U", "K", 3)),
  };
  const DeltaView view(kBase, ops);
  const ViewDefinition out = view.Materialize();

  EXPECT_EQ(view.select_size(), static_cast<int>(out.select_items.size()));
  EXPECT_EQ(view.from_size(), static_cast<int>(out.from_items.size()));
  EXPECT_EQ(view.where_size(), static_cast<int>(out.where.size()));
  for (const char* name : {"R", "S", "U", "missing"}) {
    const FromItem* a = view.FindFrom(name);
    const FromItem* b = out.FindFrom(name);
    ASSERT_EQ(a == nullptr, b == nullptr) << name;
    if (a != nullptr) EXPECT_EQ(*a, *b);
  }
  for (const char* name : {"A", "B", "X", "missing"}) {
    EXPECT_EQ(view.FindSelect(name) == nullptr, out.FindSelect(name) == nullptr)
        << name;
  }
  for (const char* name : {"R", "S", "U"}) {
    EXPECT_EQ(view.RelationIsUsed(name), out.RelationIsUsed(name)) << name;
    EXPECT_EQ(view.LocalConjunction(name).ToString(),
              out.LocalConjunction(name).ToString())
        << name;
  }
  EXPECT_EQ(view.Validate().ok(), out.Validate().ok());
}

TEST(DeltaView, StructuralHashMatchesMaterializedHash) {
  // Identity overlay.
  EXPECT_EQ(DeltaView(kBase).StructuralHash(), StructuralHash(kBase));

  // Edited overlay: hash equals the hash of the materialization, and
  // equality agrees in both directions.
  SelectItem ns = kBase.select_items[2];
  ns.source = RelAttr{"S", "D"};
  std::vector<RewriteDelta> ops{
      RewriteDelta::SetSelect(2, ns),
      RewriteDelta::DropCondition(1),
      RewriteDelta::AddCondition(MakeCondition("S", "D", 7)),
  };
  const DeltaView view(kBase, ops);
  const ViewDefinition out = view.Materialize();
  EXPECT_EQ(view.StructuralHash(), StructuralHash(out));
  EXPECT_TRUE(view.StructurallyEquals(out));
  EXPECT_TRUE(view.StructurallyEquals(DeltaView(out)));
  EXPECT_FALSE(view.StructurallyEquals(kBase));
  EXPECT_NE(view.StructuralHash(), StructuralHash(kBase));
}

TEST(DeltaView, ValidateMirrorsMaterializedValidate) {
  // Dropping every SELECT item is invalid, exactly as materialized.
  std::vector<RewriteDelta> ops{RewriteDelta::DropSelect(0),
                                RewriteDelta::DropSelect(1),
                                RewriteDelta::DropSelect(2)};
  const DeltaView view(kBase, ops);
  const Status direct = view.Validate();
  const Status materialized = view.Materialize().Validate();
  EXPECT_FALSE(direct.ok());
  EXPECT_EQ(direct.ToString(), materialized.ToString());

  // Dropping a FROM item that is still referenced is invalid too.
  std::vector<RewriteDelta> dangling{RewriteDelta::DropFrom(1)};
  const DeltaView bad(kBase, dangling);
  EXPECT_FALSE(bad.Validate().ok());
  EXPECT_EQ(bad.Validate().ToString(), bad.Materialize().Validate().ToString());
}

TEST(RewriteCandidate, LazyMaterializationIsIdempotent) {
  RewriteCandidate cand;
  cand.base = std::make_shared<const ViewDefinition>(kBase);
  cand.ops.push_back(RewriteDelta::DropSelect(1));

  const ViewDefinition& first = cand.Definition();
  const ViewDefinition& second = cand.Definition();
  EXPECT_EQ(&first, &second);  // One-shot: same cached object.
  EXPECT_EQ(first, cand.base->Apply(cand.ops));

  // An identity candidate shares the base outright (no deep copy at all).
  RewriteCandidate identity;
  identity.base = cand.base;
  EXPECT_EQ(&identity.Definition(), cand.base.get());
}

TEST(RewriteCandidate, ToRewritingJoinsStrategyTags) {
  RewriteCandidate cand;
  cand.base = std::make_shared<const ViewDefinition>(kBase);
  cand.strategies = {"drop", "replace-relation", "drop", "drop-subset"};
  cand.dropped_attributes = {"B"};
  const Rewriting rw = cand.ToRewriting();
  EXPECT_EQ(rw.strategy, "drop+replace-relation+drop-subset");
  EXPECT_EQ(rw.dropped_attributes, cand.dropped_attributes);
  EXPECT_EQ(rw.definition, kBase);
}

}  // namespace
}  // namespace eve
