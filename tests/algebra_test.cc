// Executor and common-subset operator tests: hash/nested-loop joins against
// a brute-force oracle, projection/renaming, set semantics, and the Fig.-7
// operators on an Example-2-style scenario (two replacements preserving
// different interface/extent mixes).

#include <gtest/gtest.h>

#include "algebra/common_subset.h"
#include "algebra/executor.h"
#include "common/random.h"
#include "esql/parser.h"
#include "storage/generator.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<int>>& rows) {
  std::vector<Attribute> schema;
  for (const std::string& a : attrs) {
    schema.push_back(Attribute::Make(a, DataType::kInt64, 10));
  }
  Relation rel(name, Schema(std::move(schema)));
  for (const auto& row : rows) {
    Tuple t;
    for (int v : row) t.Append(Value(static_cast<int64_t>(v)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

TEST(Executor, SelectProjectSingleRelation) {
  MapProvider provider;
  ASSERT_TRUE(provider
                  .Add(MakeRelation("R", {"A", "B"},
                                    {{1, 10}, {2, 20}, {3, 30}, {2, 20}}))
                  .ok());
  const auto result = ExecuteView(
      Parse("CREATE VIEW V AS SELECT R.B FROM R WHERE R.A >= 2"), provider);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Distinct: (20) and (30) only.
  EXPECT_EQ(result->cardinality(), 2);
  EXPECT_TRUE(result->ContainsTuple(Tuple{Value(20)}));
  EXPECT_TRUE(result->ContainsTuple(Tuple{Value(30)}));
}

TEST(Executor, BagSemanticsWhenRequested) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}, {1}, {2}})).ok());
  ExecOptions options;
  options.distinct = false;
  const auto result =
      ExecuteView(Parse("CREATE VIEW V AS SELECT R.A FROM R"), provider, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cardinality(), 3);
}

TEST(Executor, EquiJoinMatchesOracle) {
  MapProvider provider;
  ASSERT_TRUE(provider
                  .Add(MakeRelation("R", {"A", "B"}, {{1, 5}, {2, 6}, {3, 7}}))
                  .ok());
  ASSERT_TRUE(provider
                  .Add(MakeRelation("S", {"A", "C"},
                                    {{1, 100}, {1, 101}, {3, 103}, {4, 104}}))
                  .ok());
  const auto result = ExecuteView(
      Parse("CREATE VIEW V AS SELECT R.B, S.C FROM R, S WHERE R.A = S.A"),
      provider);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cardinality(), 3);
  EXPECT_TRUE(result->ContainsTuple(Tuple{Value(5), Value(100)}));
  EXPECT_TRUE(result->ContainsTuple(Tuple{Value(5), Value(101)}));
  EXPECT_TRUE(result->ContainsTuple(Tuple{Value(7), Value(103)}));
}

TEST(Executor, ThetaJoinFallsBackToNestedLoop) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}, {5}})).ok());
  ASSERT_TRUE(provider.Add(MakeRelation("S", {"B"}, {{3}, {4}})).ok());
  const auto result = ExecuteView(
      Parse("CREATE VIEW V AS SELECT R.A, S.B FROM R, S WHERE R.A < S.B"),
      provider);
  ASSERT_TRUE(result.ok());
  // (1,3), (1,4) only.
  EXPECT_EQ(result->cardinality(), 2);
}

TEST(Executor, ThreeWayJoinAcrossAliases) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"K", "X"}, {{1, 7}, {2, 8}})).ok());
  ASSERT_TRUE(provider.Add(MakeRelation("S", {"K", "Y"}, {{1, 9}, {2, 10}})).ok());
  ASSERT_TRUE(provider.Add(MakeRelation("T", {"K", "Z"}, {{1, 11}})).ok());
  const auto result = ExecuteView(
      Parse("CREATE VIEW V AS SELECT a.X, b.Y, c.Z FROM R a, S b, T c "
            "WHERE (a.K = b.K) AND (b.K = c.K)"),
      provider);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cardinality(), 1);
  EXPECT_TRUE(result->ContainsTuple(Tuple{Value(7), Value(9), Value(11)}));
}

TEST(Executor, OutputSchemaUsesExposedNames) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}})).ok());
  const auto result =
      ExecuteView(Parse("CREATE VIEW V AS SELECT R.A AS Renamed FROM R"),
                  provider);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schema().Contains("Renamed"));
}

TEST(Executor, MissingRelationFails) {
  MapProvider provider;
  const auto result =
      ExecuteView(Parse("CREATE VIEW V AS SELECT R.A FROM R"), provider);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// Randomized oracle: the executor's equi-join equals a brute-force
// evaluation over generated relations.
TEST(Executor, RandomizedJoinOracle) {
  Random rng(7);
  for (int round = 0; round < 5; ++round) {
    GeneratorOptions gen;
    gen.cardinality = 60;
    gen.num_attributes = 2;
    gen.key_domain = 15;
    gen.value_domain = 50;
    MapProvider provider;
    const Relation r = GenerateRelation("R", gen, &rng);
    const Relation s = GenerateRelation("S", gen, &rng);
    ASSERT_TRUE(provider.Add(r).ok());
    ASSERT_TRUE(provider.Add(s).ok());
    const auto result = ExecuteView(
        Parse("CREATE VIEW V AS SELECT R.A, R.B, S.B AS SB FROM R, S "
              "WHERE (R.A = S.A) AND (R.B >= 10)"),
        provider);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    Relation oracle("oracle", result->schema());
    const std::vector<Tuple> r_tuples = r.CopyTuples();
    const std::vector<Tuple> s_tuples = s.CopyTuples();
    for (const Tuple& tr : r_tuples) {
      if (tr.at(1).AsInt() < 10) continue;
      for (const Tuple& ts : s_tuples) {
        if (tr.at(0) == ts.at(0)) {
          oracle.InsertUnchecked(Tuple{tr.at(0), tr.at(1), ts.at(1)});
        }
      }
    }
    EXPECT_TRUE(SetEquals(*result, oracle)) << "round " << round;
  }
}

// --- Common-subset operators (paper Def. 1-2, Fig. 7) --------------------------

class CommonSubsetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // An Example-2-like scenario: V(A,B,C) original; V1(A,B) preserves 3 of
    // 4 projected tuples and adds 1 surplus; V2(B,C) preserves 3 and adds 4.
    v_ = MakeRelation("V", {"A", "B", "C"},
                      {{1, 1, 9}, {2, 2, 6}, {3, 1, 5}, {4, 2, 0}});
    v1_ = MakeRelation("V1", {"A", "B"}, {{1, 1}, {2, 2}, {3, 1}, {6, 4}});
    v2_ = MakeRelation("V2", {"B", "C"},
                       {{1, 9}, {2, 6}, {1, 5}, {7, 7}, {8, 8}, {9, 9}, {4, 4}});
  }
  Relation v_, v1_, v2_;
};

TEST_F(CommonSubsetTest, CommonAttributes) {
  EXPECT_EQ(CommonAttributes(v_, v1_), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(CommonAttributes(v_, v2_), (std::vector<std::string>{"B", "C"}));
  EXPECT_EQ(CommonAttributes(v1_, v2_), (std::vector<std::string>{"B"}));
}

TEST_F(CommonSubsetTest, IntersectAndDifferenceCounts) {
  const auto counts1 = CountCommonSubset(v_, v1_);
  ASSERT_TRUE(counts1.ok());
  EXPECT_EQ(counts1->a_projected, 4);  // 4 distinct (A,B) pairs in V.
  EXPECT_EQ(counts1->b_projected, 4);
  EXPECT_EQ(counts1->intersection, 3);

  const auto counts2 = CountCommonSubset(v_, v2_);
  ASSERT_TRUE(counts2.ok());
  EXPECT_EQ(counts2->a_projected, 4);
  EXPECT_EQ(counts2->b_projected, 7);
  EXPECT_EQ(counts2->intersection, 3);

  const auto surplus1 = CommonSubsetDifference(v1_, v_);
  ASSERT_TRUE(surplus1.ok());
  EXPECT_EQ(surplus1->cardinality(), 1);  // One surplus tuple in V1.
  const auto surplus2 = CommonSubsetDifference(v2_, v_);
  ASSERT_TRUE(surplus2.ok());
  EXPECT_EQ(surplus2->cardinality(), 4);  // Four surplus tuples in V2.
}

TEST_F(CommonSubsetTest, EqualityAndContainment) {
  EXPECT_FALSE(CommonSubsetEqual(v_, v1_).value());
  EXPECT_FALSE(CommonSubsetContained(v1_, v_).value());

  // A rewriting that subsets V on (A, B).
  const Relation sub = MakeRelation("sub", {"A", "B"}, {{1, 1}, {3, 1}});
  EXPECT_TRUE(CommonSubsetContained(sub, v_).value());
  EXPECT_FALSE(CommonSubsetContained(v_, sub).value());

  // Same projected content, different order and duplicates: equal.
  const Relation dup = MakeRelation(
      "dup", {"B", "A"}, {{2, 4}, {1, 3}, {2, 2}, {1, 1}, {1, 1}});
  EXPECT_TRUE(CommonSubsetEqual(v_, dup).value());
}

TEST_F(CommonSubsetTest, DisjointInterfacesRejected) {
  const Relation other = MakeRelation("other", {"X"}, {{1}});
  EXPECT_FALSE(CommonSubsetIntersect(v_, other).ok());
  EXPECT_FALSE(CountCommonSubset(v_, other).ok());
}

TEST_F(CommonSubsetTest, DuplicatesRemovedBeforeComparison) {
  const Relation dup_v = MakeRelation(
      "dupv", {"A", "B", "C"},
      {{1, 1, 9}, {1, 1, 9}, {2, 2, 6}, {3, 1, 5}, {4, 2, 0}});
  const auto counts = CountCommonSubset(dup_v, v1_);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts->a_projected, 4);  // Duplicate collapsed.
}

}  // namespace
}  // namespace eve
