// Delta-aware MKB memo invalidation (misd/mkb.h): twin MKBs -- one with
// selective invalidation (the default), one in the seed's full-flush mode --
// driven through the same interleaved mutation/query script, with every
// memoized closure answer checked against PcEdgesFromTransitiveUncached
// (the oracle that rebuilds adjacency from the constraint store per query).
// Selective invalidation is an optimization only: both modes must answer
// every query identically at every step; only the recomputation counters
// may differ.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "misd/mkb.h"

namespace eve {
namespace {

Schema IntSchema(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  for (const std::string& n : names) {
    attrs.push_back(Attribute::Make(n, DataType::kInt64, 25));
  }
  return Schema(std::move(attrs));
}

// Order- and provenance-insensitive rendering of an edge set.  The
// constraint text is included so bridge edges (installed by Unregister /
// RemoveAttribute) must match across modes too, not just endpoints.
std::vector<std::string> EdgeKeys(const std::vector<PcEdge>& edges) {
  std::vector<std::string> keys;
  keys.reserve(edges.size());
  for (const PcEdge& e : edges) {
    std::string key = e.source.ToString() + "->" + e.target.ToString() + "|" +
                      std::string(PcRelationTypeToString(e.type)) + "|";
    for (const auto& [from, to] : e.attribute_map) {
      key += from + ":" + to + ",";
    }
    key += "|" + e.constraint_text;
    keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// A replica chain R0..R4 (sites S0..S4) plus an unrelated island T0-T1
// whose churn must leave the chain's closures warm.
void BuildSpace(MetaKnowledgeBase& mkb) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(mkb.RegisterRelationWithStats(
                       RelationId{"S" + std::to_string(i),
                                  "R" + std::to_string(i)},
                       IntSchema({"K", "V"}), 100)
                    .ok());
  }
  for (int i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(
                       RelationId{"S" + std::to_string(i),
                                  "R" + std::to_string(i)},
                       RelationId{"S" + std::to_string(i + 1),
                                  "R" + std::to_string(i + 1)},
                       {"K", "V"}, PcRelationType::kEquivalent))
                    .ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(mkb.RegisterRelationWithStats(
                       RelationId{"T", "T" + std::to_string(i)},
                       IntSchema({"K", "V"}), 50)
                    .ok());
  }
  ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(
                     RelationId{"T", "T0"}, RelationId{"T", "T1"}, {"K", "V"},
                     PcRelationType::kSubset))
                  .ok());
}

class MkbInvalidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildSpace(selective_);
    BuildSpace(full_);
    full_.set_selective_invalidation(false);
  }

  // Memoized closures of both twins vs the uncached oracle, for every
  // registered relation at 1 and 4 hops (EdgeKeys copies everything, so the
  // memo references' next-non-const-call validity rule is respected).
  void ExpectClosuresAgree(const std::string& step) {
    ASSERT_EQ(selective_.Relations(), full_.Relations()) << step;
    for (const RelationId& id : selective_.Relations()) {
      for (int hops : {1, 4}) {
        const auto oracle = EdgeKeys(
            selective_.PcEdgesFromTransitiveUncached(id, hops));
        EXPECT_EQ(EdgeKeys(selective_.PcEdgesFromTransitive(id, hops)), oracle)
            << step << ": selective vs oracle at " << id.ToString() << "/"
            << hops;
        EXPECT_EQ(EdgeKeys(full_.PcEdgesFromTransitive(id, hops)), oracle)
            << step << ": full-flush vs oracle at " << id.ToString() << "/"
            << hops;
      }
    }
  }

  // Applies one mutation to both twins and re-verifies every closure.
  template <typename Fn>
  void Mutate(const std::string& step, Fn&& fn) {
    fn(selective_);
    fn(full_);
    ExpectClosuresAgree(step);
  }

  MetaKnowledgeBase selective_;
  MetaKnowledgeBase full_;
};

TEST_F(MkbInvalidationTest, InterleavedMutationsMatchOracle) {
  ExpectClosuresAgree("initial");

  Mutate("rename island attribute", [](MetaKnowledgeBase& mkb) {
    ASSERT_TRUE(mkb.RenameAttribute(RelationId{"T", "T0"}, "V", "W").ok());
  });
  Mutate("add attribute", [](MetaKnowledgeBase& mkb) {
    ASSERT_TRUE(mkb.AddAttribute(RelationId{"S0", "R0"},
                                 Attribute::Make("E", DataType::kInt64, 25))
                    .ok());
  });
  Mutate("remove constrained attribute", [](MetaKnowledgeBase& mkb) {
    // Drops both chain constraints at R2 and installs R1<->R3 bridges.
    ASSERT_TRUE(mkb.RemoveAttribute(RelationId{"S2", "R2"}, "V").ok());
  });
  Mutate("unregister mid-chain", [](MetaKnowledgeBase& mkb) {
    ASSERT_TRUE(mkb.UnregisterRelation(RelationId{"S1", "R1"}).ok());
  });
  Mutate("register + link new replica", [](MetaKnowledgeBase& mkb) {
    ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"S5", "R5"},
                                              IntSchema({"K", "V"}), 100)
                    .ok());
    ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(
                       RelationId{"S4", "R4"}, RelationId{"S5", "R5"},
                       {"K", "V"}, PcRelationType::kEquivalent))
                    .ok());
  });
  Mutate("rename relation", [](MetaKnowledgeBase& mkb) {
    ASSERT_TRUE(mkb.RenameRelation(RelationId{"S3", "R3"}, "R3x").ok());
  });
  Mutate("rename chain attribute", [](MetaKnowledgeBase& mkb) {
    ASSERT_TRUE(mkb.RenameAttribute(RelationId{"S4", "R4"}, "V", "Vr").ok());
  });

  // The twins diverge only in how much they recomputed.
  const MkbMemoStats selective = selective_.memo_stats();
  const MkbMemoStats full = full_.memo_stats();
  EXPECT_GT(selective.memo_survivals, 0);
  EXPECT_GT(selective.selective_drops, 0);
  EXPECT_EQ(selective.full_flushes, 0);
  EXPECT_GT(full.full_flushes, 0);
  EXPECT_EQ(full.memo_survivals, 0);
  EXPECT_EQ(full.selective_drops, 0);
  EXPECT_GT(full.closure_misses, selective.closure_misses);
}

TEST_F(MkbInvalidationTest, UnrelatedMutationKeepsClosureWarm) {
  // Warm the chain-head closure in both twins.
  (void)selective_.PcEdgesFromTransitive(RelationId{"S0", "R0"}, 4);
  (void)full_.PcEdgesFromTransitive(RelationId{"S0", "R0"}, 4);
  const int64_t selective_misses = selective_.memo_stats().closure_misses;
  const int64_t full_misses = full_.memo_stats().closure_misses;

  // Mutate only the island; the chain closure does not reach it.
  ASSERT_TRUE(selective_.RenameAttribute(RelationId{"T", "T1"}, "V", "W").ok());
  ASSERT_TRUE(full_.RenameAttribute(RelationId{"T", "T1"}, "V", "W").ok());

  const auto& warm = selective_.PcEdgesFromTransitive(RelationId{"S0", "R0"}, 4);
  EXPECT_EQ(warm.size(), 4u);  // R0 reaches R1..R4.
  EXPECT_EQ(selective_.memo_stats().closure_misses, selective_misses)
      << "unrelated mutation must not cost a recomputation";
  (void)full_.PcEdgesFromTransitive(RelationId{"S0", "R0"}, 4);
  EXPECT_EQ(full_.memo_stats().closure_misses, full_misses + 1)
      << "full flush recomputes after any mutation";
}

TEST_F(MkbInvalidationTest, IntersectingMutationDropsClosure) {
  (void)selective_.PcEdgesFromTransitive(RelationId{"S0", "R0"}, 4);
  const int64_t misses = selective_.memo_stats().closure_misses;

  // R4 is in the closure's reached set, so the entry must drop.
  ASSERT_TRUE(selective_.RenameAttribute(RelationId{"S4", "R4"}, "V", "W").ok());
  (void)selective_.PcEdgesFromTransitive(RelationId{"S0", "R0"}, 4);
  EXPECT_EQ(selective_.memo_stats().closure_misses, misses + 1);
}

TEST_F(MkbInvalidationTest, JcPairCacheAgreesAcrossModes) {
  JoinConstraint jc;
  jc.left = RelationId{"S0", "R0"};
  jc.right = RelationId{"T", "T0"};
  jc.condition.Add(PrimitiveClause::AttrAttr(RelAttr{"R0", "K"},
                                             CompOp::kEqual,
                                             RelAttr{"T0", "K"}));
  ASSERT_TRUE(selective_.AddJoinConstraint(jc).ok());
  ASSERT_TRUE(full_.AddJoinConstraint(jc).ok());
  for (MetaKnowledgeBase* mkb : {&selective_, &full_}) {
    const auto found =
        mkb->FindJoinConstraints(RelationId{"T", "T0"}, RelationId{"S0", "R0"});
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0]->left, (RelationId{"S0", "R0"}));
  }
  // A mutation at one endpoint invalidates the pair in both modes.
  ASSERT_TRUE(selective_.RenameAttribute(RelationId{"T", "T0"}, "V", "W").ok());
  ASSERT_TRUE(full_.RenameAttribute(RelationId{"T", "T0"}, "V", "W").ok());
  for (MetaKnowledgeBase* mkb : {&selective_, &full_}) {
    EXPECT_EQ(mkb->FindJoinConstraints(RelationId{"S0", "R0"},
                                       RelationId{"T", "T0"})
                  .size(),
              1u);
  }
}

}  // namespace
}  // namespace eve
