// The selective rewriting policy (src/policy/): decision pre-checks
// verified against full enumeration (the oracle), cap top-1 preservation,
// the unified EvolutionPolicy surface (presets, builder, Validate), the
// pluggable rankers (QC default, learned linear from JSON) and their
// determinism across thread counts, and the per-decision counters.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "bench_util/scenario.h"
#include "esql/parser.h"
#include "esql/printer.h"
#include "policy/evolution_policy.h"
#include "policy/policy.h"
#include "policy/ranker.h"
#include "qc/ranking.h"
#include "synch/strategy_set.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

// --- StrategySet (satellite 2) -----------------------------------------------

TEST(StrategySet, BitmaskSemantics) {
  EXPECT_TRUE(StrategySet::None().empty());
  EXPECT_FALSE(StrategySet::All().empty());
  EXPECT_TRUE(StrategySet::All().Has(Strategy::kReplaceRelation));
  EXPECT_TRUE(StrategySet::All().Has(Strategy::kJoinIn));
  EXPECT_TRUE(StrategySet::All().Has(Strategy::kCvsPair));

  const StrategySet no_cvs = StrategySet::All().Without(Strategy::kCvsPair);
  EXPECT_TRUE(no_cvs.Has(Strategy::kReplaceRelation));
  EXPECT_TRUE(no_cvs.Has(Strategy::kJoinIn));
  EXPECT_FALSE(no_cvs.Has(Strategy::kCvsPair));
  EXPECT_NE(no_cvs, StrategySet::All());
  EXPECT_EQ(no_cvs.With(Strategy::kCvsPair), StrategySet::All());

  const StrategySet only_join = StrategySet(Strategy::kJoinIn);
  EXPECT_TRUE(only_join.Has(Strategy::kJoinIn));
  EXPECT_FALSE(only_join.Has(Strategy::kReplaceRelation));
  EXPECT_EQ(StrategySet::None().With(Strategy::kJoinIn), only_join);
}

TEST(StrategySet, ToStringListsMembers) {
  EXPECT_EQ(StrategySet::None().ToString(), "none");
  const std::string all = StrategySet::All().ToString();
  EXPECT_NE(all.find("replace-relation"), std::string::npos);
  EXPECT_NE(all.find("join-in"), std::string::npos);
  EXPECT_NE(all.find("cvs-pair"), std::string::npos);
}

// --- EvolutionPolicy surface (satellite 1) -----------------------------------

TEST(EvolutionPolicy, PresetsValidate) {
  EXPECT_TRUE(EvolutionPolicy::Exhaustive().Validate().ok());
  EXPECT_TRUE(EvolutionPolicy::Balanced().Validate().ok());
  EXPECT_TRUE(EvolutionPolicy::LatencyBound().Validate().ok());
  EXPECT_EQ(EvolutionPolicy::Exhaustive().policy.mode,
            PolicyMode::kExhaustive);
  EXPECT_EQ(EvolutionPolicy::Balanced().policy.mode, PolicyMode::kBalanced);
  EXPECT_EQ(EvolutionPolicy::LatencyBound().policy.mode,
            PolicyMode::kLatencyBound);
}

TEST(EvolutionPolicy, PresetByNameIsCaseInsensitive) {
  EXPECT_TRUE(PolicyPresetByName("exhaustive").ok());
  EXPECT_TRUE(PolicyPresetByName("Balanced").ok());
  EXPECT_TRUE(PolicyPresetByName("LATENCY_BOUND").ok());
  EXPECT_TRUE(PolicyPresetByName("latency-bound").ok());
  EXPECT_EQ(PolicyPresetByName("balanced")->name, "balanced");
  EXPECT_FALSE(PolicyPresetByName("greedy").ok());
  EXPECT_FALSE(PolicyPresetByName("").ok());
}

TEST(EvolutionPolicy, ValidateRejectsBadKnobs) {
  EXPECT_FALSE(EvolutionPolicyBuilder().MaxRewritings(0).Build().ok());
  EXPECT_FALSE(EvolutionPolicyBuilder().MaxRewritings(-3).Build().ok());
  EXPECT_FALSE(EvolutionPolicyBuilder().MaxPcHops(0).Build().ok());
  EXPECT_FALSE(EvolutionPolicyBuilder().CapMaxRewritings(0).Build().ok());

  EvolutionPolicy unknown_version;
  unknown_version.version = 99;
  EXPECT_FALSE(unknown_version.Validate().ok());

  // A ranker needs the delta pipeline (candidates are scored as overlays).
  EvolutionPolicy eager_with_ranker;
  eager_with_ranker.synchronizer.use_delta_enumeration = false;
  eager_with_ranker.ranker = std::make_shared<QcRanker>(
      QcParameters{}, CostModelOptions{}, WorkloadOptions{});
  EXPECT_FALSE(eager_with_ranker.Validate().ok());
  eager_with_ranker.synchronizer.use_delta_enumeration = true;
  EXPECT_TRUE(eager_with_ranker.Validate().ok());
}

TEST(EvolutionPolicy, BuilderComposesOntoPreset) {
  auto built = EvolutionPolicyBuilder(EvolutionPolicy::Balanced())
                   .MaxRewritings(64)
                   .Strategies(StrategySet::All().Without(Strategy::kCvsPair))
                   .SynchronizeThreads(2)
                   .Name("tuned")
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->name, "tuned");
  EXPECT_EQ(built->policy.mode, PolicyMode::kBalanced);
  EXPECT_EQ(built->synchronizer.max_rewritings, 64);
  EXPECT_FALSE(built->synchronizer.strategies.Has(Strategy::kCvsPair));
  const EveOptions options = built->ToEveOptions();
  EXPECT_EQ(options.synchronize_threads, 2);
  EXPECT_EQ(options.policy.mode, PolicyMode::kBalanced);
}

// --- LinearRanker JSON weights ----------------------------------------------

TEST(LinearRanker, ParsesFlatWeightObject) {
  auto ranker = LinearRanker::FromJson(
      "{\"bias\": 0.25, \"dd\": -1.5, \"weighted_cost\": -0.001}");
  ASSERT_TRUE(ranker.ok()) << ranker.status().ToString();
  EXPECT_DOUBLE_EQ(ranker->bias(), 0.25);
  ASSERT_EQ(ranker->weights().size(), 2u);
  EXPECT_DOUBLE_EQ(ranker->weights().at("dd"), -1.5);
  EXPECT_DOUBLE_EQ(ranker->weights().at("weighted_cost"), -0.001);
  EXPECT_EQ(ranker->name(), "linear");
}

TEST(LinearRanker, RejectsMalformedWeights) {
  // Unknown feature name.
  EXPECT_FALSE(LinearRanker::FromJson("{\"bogus\": 1}").ok());
  // Nesting / arrays / strings.
  EXPECT_FALSE(LinearRanker::FromJson("{\"dd\": {\"x\": 1}}").ok());
  EXPECT_FALSE(LinearRanker::FromJson("{\"dd\": [1]}").ok());
  EXPECT_FALSE(LinearRanker::FromJson("{\"dd\": \"1\"}").ok());
  // Bad number / trailing junk / duplicate key / not an object.
  EXPECT_FALSE(LinearRanker::FromJson("{\"dd\": abc}").ok());
  EXPECT_FALSE(LinearRanker::FromJson("{\"dd\": 1} trailing").ok());
  EXPECT_FALSE(LinearRanker::FromJson("{\"dd\": 1, \"dd\": 2}").ok());
  EXPECT_FALSE(LinearRanker::FromJson("[1, 2]").ok());
  EXPECT_FALSE(LinearRanker::FromJson("").ok());
  EXPECT_FALSE(LinearRanker::FromJsonFile("/nonexistent/weights.json").ok());
}

TEST(LinearRanker, FeatureNamesMatchVectorOrder) {
  const CandidateFeatures features;
  EXPECT_EQ(CandidateFeatures::Names().size(), features.ToVector().size());
}

// --- Decision pre-checks on hand-built spaces --------------------------------

// Two PC-equivalent relations; the view references R's attributes with
// every evolution flag permissive, so relation deletion admits an exact
// covering replacement and the CVS fan-out is dominated (the cap case).
struct CapFixture {
  MetaKnowledgeBase mkb;
  ViewDefinition view;
  SchemaChange change{DeleteRelation{RelationId{"IS1", "R"}}};

  CapFixture() {
    const Schema ab({Attribute::Make("A", DataType::kInt64, 50),
                     Attribute::Make("B", DataType::kInt64, 50)});
    (void)mkb.RegisterRelationWithStats({"IS1", "R"}, ab, 1000, 0.5);
    (void)mkb.RegisterRelationWithStats({"IS2", "S"}, ab, 1000, 0.5);
    (void)mkb.RegisterRelationWithStats({"IS3", "T"}, ab, 800, 0.5);
    (void)mkb.AddPcConstraint(MakeProjectionPc({"IS1", "R"}, {"IS2", "S"},
                                               {"A", "B"},
                                               PcRelationType::kEquivalent));
    (void)mkb.AddPcConstraint(MakeProjectionPc({"IS1", "R"}, {"IS3", "T"},
                                               {"A"},
                                               PcRelationType::kSubset));
    view = ParseViewDefinition(
               "CREATE VIEW V AS SELECT R.A (AD=true, AR=true), "
               "R.B (AD=true, AR=true) FROM R (RD=true, RR=true)")
               .value();
  }
};

TEST(PolicyDecision, ExhaustiveModeNeverSkips) {
  CapFixture fixture;
  PolicyConfig config;  // kExhaustive.
  const PolicyEngine engine(fixture.mkb, config, SynchronizerOptions{});
  // Even a change to a relation the view never references stays kFull.
  const SchemaChange unrelated{DeleteRelation{RelationId{"IS3", "T"}}};
  EXPECT_EQ(engine.Decide(fixture.view, unrelated).action,
            PolicyAction::kFull);
  EXPECT_EQ(engine.Decide(fixture.view, fixture.change).action,
            PolicyAction::kFull);
}

TEST(PolicyDecision, SkipsUnaffectedPairs) {
  CapFixture fixture;
  PolicyConfig config;
  config.mode = PolicyMode::kBalanced;
  const PolicyEngine engine(fixture.mkb, config, SynchronizerOptions{});
  const ViewSynchronizer oracle(fixture.mkb);

  const SchemaChange cases[] = {
      SchemaChange{DeleteRelation{RelationId{"IS3", "T"}}},
      SchemaChange{DeleteAttribute{RelationId{"IS2", "S"}, "A"}},
      SchemaChange{AddAttribute{RelationId{"IS1", "R"},
                                Attribute::Make("C", DataType::kInt64, 10)}},
      SchemaChange{RenameAttribute{RelationId{"IS1", "R"}, "Z", "Z2"}},
  };
  for (const SchemaChange& change : cases) {
    const PolicyDecision decision = engine.Decide(fixture.view, change);
    EXPECT_EQ(decision.action, PolicyAction::kSkipUnaffected);
    const auto full = oracle.Synchronize(fixture.view, change);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_FALSE(full->affected) << "skip must match the oracle";
  }
}

TEST(PolicyDecision, CapDropsCvsPairAndPreservesTopPick) {
  CapFixture fixture;
  PolicyConfig config;
  config.mode = PolicyMode::kBalanced;
  config.cap_max_rewritings = 8;
  config.cap_requires_exact_overlap = false;
  const SynchronizerOptions base;
  const PolicyEngine engine(fixture.mkb, config, base);
  const PolicyDecision decision = engine.Decide(fixture.view, fixture.change);
  ASSERT_EQ(decision.action, PolicyAction::kCap);
  EXPECT_FALSE(decision.options.strategies.Has(Strategy::kCvsPair));
  EXPECT_EQ(decision.options.max_rewritings, 8);

  // The capped enumeration's QC top-1 must equal the full enumeration's.
  const auto full =
      ViewSynchronizer(fixture.mkb, base)
          .Synchronize(fixture.view, fixture.change);
  const auto capped =
      ViewSynchronizer(fixture.mkb, decision.options)
          .Synchronize(fixture.view, fixture.change);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(capped.ok());
  ASSERT_FALSE(full->rewritings.empty());
  ASSERT_FALSE(capped->rewritings.empty());
  const QcModel model(QcParameters{}, CostModelOptions{}, WorkloadOptions{});
  const auto full_ranking =
      model.Rank(fixture.view, full->rewritings, fixture.mkb);
  const auto capped_ranking =
      model.Rank(fixture.view, capped->rewritings, fixture.mkb);
  ASSERT_TRUE(full_ranking.ok());
  ASSERT_TRUE(capped_ranking.ok());
  EXPECT_EQ(
      PrintViewCompact(full_ranking->front().rewriting.definition),
      PrintViewCompact(capped_ranking->front().rewriting.definition));
}

// No PC edges and indispensable references: the drop strategies are
// blocked and no discovery strategy has an edge to follow, so the policy
// proves death without enumerating.
struct DeadFixture {
  MetaKnowledgeBase mkb;
  ViewDefinition view;

  DeadFixture() {
    const Schema ab({Attribute::Make("A", DataType::kInt64, 50),
                     Attribute::Make("B", DataType::kInt64, 50)});
    (void)mkb.RegisterRelationWithStats({"IS1", "R"}, ab, 1000, 0.5);
    view = ParseViewDefinition("CREATE VIEW V AS SELECT R.A, R.B FROM R")
               .value();
  }
};

TEST(PolicyDecision, SkipDeadMatchesOracle) {
  DeadFixture fixture;
  PolicyConfig config;
  config.mode = PolicyMode::kBalanced;
  const PolicyEngine engine(fixture.mkb, config, SynchronizerOptions{});
  const ViewSynchronizer oracle(fixture.mkb);

  const SchemaChange cases[] = {
      SchemaChange{DeleteAttribute{RelationId{"IS1", "R"}, "A"}},
      SchemaChange{DeleteRelation{RelationId{"IS1", "R"}}},
  };
  for (const SchemaChange& change : cases) {
    const PolicyDecision decision = engine.Decide(fixture.view, change);
    EXPECT_EQ(decision.action, PolicyAction::kSkipDead);
    const auto full = oracle.Synchronize(fixture.view, change);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_TRUE(full->affected);
    EXPECT_TRUE(full->rewritings.empty())
        << "skip-dead must only fire when enumeration finds nothing";
    EXPECT_FALSE(full->truncated);
  }
}

// --- Oracle sweep over the evolution stream ----------------------------------

ScenarioOptions SmallScenario() {
  ScenarioOptions options;
  options.families = 3;
  options.replicas_per_family = 4;
  options.churn_relations = 3;
  options.views = 12;
  options.dimension_rows = 64;
  options.fact_rows = 64;
  options.churn_rows = 16;
  return options;
}

std::unique_ptr<EveSystem> BuildSmall(const EveOptions& base, int threads = 0,
                                      const ScenarioOptions& scenario =
                                          SmallScenario()) {
  EveOptions eve_options = base;
  eve_options.materialize = false;
  eve_options.synchronize_threads = threads;
  auto system = BuildScenarioSystem(scenario, eve_options);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

// Replays a stream; before every capability change, every alive view's
// Balanced decision is checked against full enumeration on the pre-change
// MKB.  This is the skip-soundness corpus of the policy header: skips must
// reproduce the oracle's unaffected/dead verdicts exactly, and caps must
// preserve the QC top-1.
TEST(PolicyOracle, EveryStreamDecisionSoundAgainstFullEnumeration) {
  const auto system = BuildSmall(EveOptions{});
  const auto stream =
      GenerateEventStream(SmallScenario(), 300, SmallScenario().seed + 1);

  PolicyConfig config;
  config.mode = PolicyMode::kBalanced;
  const SynchronizerOptions base;
  const QcModel model(QcParameters{}, CostModelOptions{}, WorkloadOptions{});
  int64_t skips_unaffected = 0, skips_dead = 0, caps = 0, fulls = 0;

  for (const ScenarioEvent& event : stream) {
    if (const auto* change = std::get_if<SchemaChange>(&event.op)) {
      const PolicyEngine engine(system->mkb(), config, base);
      const ViewSynchronizer oracle(system->mkb(), base);
      for (const std::string& name : system->vkb().ViewNames()) {
        if (system->GetViewState(name).value_or(ViewState::kDead) !=
            ViewState::kAlive) {
          continue;
        }
        const ViewDefinition def = system->GetViewDefinition(name).value();
        const PolicyDecision decision = engine.Decide(def, *change);
        if (decision.action == PolicyAction::kFull) {
          ++fulls;
          continue;
        }
        const auto full = oracle.Synchronize(def, *change);
        ASSERT_TRUE(full.ok()) << event.ToString() << ": "
                               << full.status().ToString();
        switch (decision.action) {
          case PolicyAction::kSkipUnaffected:
            ++skips_unaffected;
            EXPECT_FALSE(full->affected)
                << name << " under " << event.ToString();
            break;
          case PolicyAction::kSkipDead:
            ++skips_dead;
            EXPECT_TRUE(full->affected)
                << name << " under " << event.ToString();
            EXPECT_TRUE(full->rewritings.empty())
                << name << " under " << event.ToString();
            break;
          case PolicyAction::kCap: {
            ++caps;
            const auto capped = ViewSynchronizer(system->mkb(),
                                                 decision.options)
                                    .Synchronize(def, *change);
            ASSERT_TRUE(capped.ok());
            if (full->rewritings.empty()) {
              EXPECT_TRUE(capped->rewritings.empty());
              break;
            }
            ASSERT_FALSE(capped->rewritings.empty())
                << name << " under " << event.ToString();
            const auto a = model.Rank(def, full->rewritings, system->mkb());
            const auto b = model.Rank(def, capped->rewritings, system->mkb());
            ASSERT_TRUE(a.ok());
            ASSERT_TRUE(b.ok());
            EXPECT_EQ(PrintViewCompact(a->front().rewriting.definition),
                      PrintViewCompact(b->front().rewriting.definition))
                << name << " under " << event.ToString();
            break;
          }
          case PolicyAction::kFull:
            break;
        }
      }
      ASSERT_TRUE(system->NotifySchemaChange(*change).ok())
          << event.ToString();
    } else if (const auto* update = std::get_if<DataUpdate>(&event.op)) {
      ASSERT_TRUE(system->NotifyDataUpdate(*update).ok()) << event.ToString();
    } else {
      ASSERT_TRUE(
          system->AddPcConstraint(std::get<PcConstraint>(event.op)).ok());
    }
  }
  // The stream must actually exercise the selective actions.
  EXPECT_GT(skips_unaffected, 0);
  EXPECT_GT(fulls + caps + skips_dead, 0);
}

// --- End-to-end through EveSystem --------------------------------------------

// Exhaustive() must be byte-identical to the seed's always-enumerate
// behavior: same ChangeReports over a full stream.
TEST(PolicyEndToEnd, ExhaustivePresetByteIdenticalToSeedOptions) {
  const auto seed_system = BuildSmall(EveOptions{});
  const auto policy_system =
      BuildSmall(EvolutionPolicy::Exhaustive().ToEveOptions());
  const auto stream =
      GenerateEventStream(SmallScenario(), 300, SmallScenario().seed + 1);
  for (const ScenarioEvent& event : stream) {
    const auto* change = std::get_if<SchemaChange>(&event.op);
    if (change == nullptr) continue;
    const auto a = seed_system->NotifySchemaChange(*change);
    const auto b = policy_system->NotifySchemaChange(*change);
    ASSERT_TRUE(a.ok()) << event.ToString();
    ASSERT_TRUE(b.ok()) << event.ToString();
    EXPECT_EQ(a->ToString(), b->ToString()) << event.ToString();
  }
  const PolicyStats& stats = policy_system->policy_stats();
  EXPECT_EQ(stats.full, stats.decisions);
  EXPECT_EQ(stats.capped, 0);
  EXPECT_EQ(stats.skipped_unaffected, 0);
  EXPECT_EQ(stats.skipped_dead, 0);
}

// Balanced replay over the CVS-rich space (partial mirrors on): the
// counters add up, the selective actions fire, the stream's survival
// outcome matches the exhaustive oracle, and the policy curve's acceptance
// holds -- at least 3x less enumeration work for at most 2% mean
// adopted-QC loss.  Everything is seeded, so the inequalities are
// deterministic.
TEST(PolicyEndToEnd, BalancedCountersAndSurvivalMatchOracle) {
  ScenarioOptions scenario = SmallScenario();
  scenario.partial_mirrors = 8;
  const auto stream = GenerateEventStream(scenario, 400, scenario.seed + 1);
  const auto exhaustive = BuildSmall(EveOptions{}, 0, scenario);
  const auto balanced =
      BuildSmall(EvolutionPolicy::Balanced().ToEveOptions(), 0, scenario);
  const auto a = ReplayScenario(*exhaustive, stream);
  const auto b = ReplayScenario(*balanced, stream);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->alive_views, b->alive_views);
  EXPECT_EQ(a->dead_views, b->dead_views);

  const PolicyStats& stats = b->final_policy;
  EXPECT_EQ(stats.decisions, stats.full + stats.capped +
                                 stats.skipped_unaffected +
                                 stats.skipped_dead);
  EXPECT_GT(stats.decisions, 0);
  EXPECT_GT(stats.skipped_unaffected, 0);
  EXPECT_GT(stats.capped, 0);
  // The acceptance curve: >= 3x fewer candidates considered...
  EXPECT_GE(a->final_policy.candidates_considered,
            3 * stats.candidates_considered);
  // ... at <= 2% mean adopted-QC loss vs the always-enumerate oracle.
  ASSERT_GT(a->MeanAdoptedQc(), 0.0);
  EXPECT_LE(a->MeanAdoptedQc() - b->MeanAdoptedQc(),
            0.02 * a->MeanAdoptedQc());
  EXPECT_NE(stats.ToString().find("decisions"), std::string::npos);
}

// Ranker adoption must be reproducible across the parallel per-view loop's
// thread counts (per-candidate scoring is set-independent; adoption is a
// stable argmax).
TEST(PolicyEndToEnd, LinearRankerAdoptionDeterministicAcrossThreads) {
  auto ranker = LinearRanker::FromJson(
      "{\"bias\": 0.0, \"dd\": -2.0, \"weighted_cost\": -0.0001, "
      "\"replacements\": -0.05, \"pc_hops_total\": -0.01}");
  ASSERT_TRUE(ranker.ok()) << ranker.status().ToString();
  const auto shared =
      std::make_shared<const LinearRanker>(std::move(*ranker));
  const auto stream =
      GenerateEventStream(SmallScenario(), 200, SmallScenario().seed + 1);

  std::string serial_log;
  for (int threads : {1, 2, 4}) {
    EveOptions options = EvolutionPolicy::Balanced().ToEveOptions();
    options.ranker = shared;
    const auto system = BuildSmall(options, threads);
    std::string log;
    for (const ScenarioEvent& event : stream) {
      const auto* change = std::get_if<SchemaChange>(&event.op);
      if (change == nullptr) continue;
      const auto report = system->NotifySchemaChange(*change);
      ASSERT_TRUE(report.ok()) << event.ToString() << ": "
                               << report.status().ToString();
      log += report->ToString();
      log += '\n';
    }
    if (threads == 1) {
      serial_log = std::move(log);
      EXPECT_FALSE(serial_log.empty());
    } else {
      EXPECT_EQ(log, serial_log) << "threads=" << threads;
    }
  }
}

// A ranker without the delta pipeline is a configuration error, surfaced
// at the first schema change.
TEST(PolicyEndToEnd, RankerRequiresDeltaEnumeration) {
  EveOptions options;
  options.synchronizer.use_delta_enumeration = false;
  options.ranker = std::make_shared<QcRanker>(
      QcParameters{}, CostModelOptions{}, WorkloadOptions{});
  options.materialize = false;
  EveSystem system(options);
  const Schema ab({Attribute::Make("A", DataType::kInt64, 50)});
  Relation r("R", ab);
  ASSERT_TRUE(system.RegisterRelation("IS1", std::move(r), 1.0).ok());
  ASSERT_TRUE(system.DefineView("CREATE VIEW V AS SELECT R.A FROM R").ok());
  const auto report = system.NotifySchemaChange(
      SchemaChange(RenameAttribute{RelationId{"IS1", "R"}, "A", "A2"}));
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace eve
