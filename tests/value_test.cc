// Edge cases of the compact interned Value representation (types/value.h):
// NULL ordering, cross-type numeric comparison, NaN, the string pool
// (empty/long strings, pool-identity equality, cross-pool content
// equality), and hash stability across interning orders.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "expr/comp_op.h"
#include "storage/relation.h"
#include "types/string_pool.h"
#include "types/value.h"

namespace eve {
namespace {

TEST(Value, StaysCompact) {
  // The whole point of the representation: tuples are POD-sized even on
  // string workloads.
  EXPECT_LE(sizeof(Value), 16u);
}

TEST(Value, NullOrdering) {
  const Value null;
  EXPECT_TRUE(null.is_null());
  EXPECT_EQ(null.Compare(Value()), std::strong_ordering::equal);
  EXPECT_EQ(null.Hash(), Value().Hash());
  // NULL sorts below every non-NULL value, including -inf and strings.
  EXPECT_LT(null, Value(std::numeric_limits<int64_t>::min()));
  EXPECT_LT(null, Value(-std::numeric_limits<double>::infinity()));
  EXPECT_LT(null, Value(""));
  // ...but predicate comparisons involving NULL are false (SQL semantics).
  EXPECT_FALSE(EvalCompOp(CompOp::kEqual, null, null));
  EXPECT_FALSE(EvalCompOp(CompOp::kLess, null, Value(1)));
}

TEST(Value, CrossTypeNumericCompare) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
  EXPECT_LT(Value(3), Value(3.5));
  EXPECT_LT(Value(2.5), Value(3));
  EXPECT_EQ(Value(-0.0), Value(0.0));
  EXPECT_EQ(Value(-0.0).Hash(), Value(0.0).Hash());
  EXPECT_EQ(Value(0), Value(-0.0));
  // Numbers order before strings in the heterogeneous total order.
  EXPECT_LT(Value(999), Value("0"));
}

TEST(Value, NaNSemantics) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Value vnan(nan);
  // Total order (set semantics): NaN equals itself, sits above all reals,
  // and hashes consistently -- so Distinct() treats NaNs as one value
  // instead of the unordered-compares-equal confusion a raw `<` gives.
  EXPECT_EQ(vnan.Compare(Value(nan)), std::strong_ordering::equal);
  EXPECT_EQ(vnan.Hash(), Value(nan).Hash());
  EXPECT_GT(vnan, Value(1e308));
  EXPECT_LT(Value(-nan), Value(-1e308));
  EXPECT_NE(vnan, Value(1));
  // Predicates: NaN behaves like NULL -- every comparison is false, even
  // `<>` (SQL-style unknown-as-false, deliberately not IEEE).
  EXPECT_FALSE(EvalCompOp(CompOp::kEqual, vnan, vnan));
  EXPECT_FALSE(EvalCompOp(CompOp::kLess, Value(1), vnan));
  EXPECT_FALSE(EvalCompOp(CompOp::kGreater, vnan, Value(1)));
  EXPECT_FALSE(EvalCompOp(CompOp::kNotEqual, vnan, Value(1)));
}

TEST(Value, EmptyString) {
  const Value empty("");
  EXPECT_EQ(empty.type(), DataType::kString);
  EXPECT_EQ(empty.AsString(), "");
  EXPECT_EQ(empty, Value(std::string()));
  EXPECT_LT(empty, Value("a"));
  EXPECT_EQ(empty.ToString(), "''");
}

TEST(Value, LongStringsRoundTrip) {
  // Far longer than any inline/SSO buffer: the pool owns the bytes, the
  // Value only carries ids.
  const std::string long_a(100000, 'a');
  std::string long_b = long_a;
  long_b.back() = 'b';
  const Value va(long_a);
  const Value vb(long_b);
  EXPECT_EQ(va.AsString(), long_a);
  EXPECT_EQ(va, Value(long_a));
  EXPECT_NE(va, vb);
  EXPECT_LT(va, vb);
}

TEST(Value, PoolIdentityEqualityAcrossRelations) {
  // Two relations interning the same text into the same (default) pool
  // produce Values with identical interning coordinates: equality is id
  // comparison, and join probes across relations hit without byte compares.
  Relation r("R", Schema({Attribute::Make("A", DataType::kString, 20)}));
  Relation s("S", Schema({Attribute::Make("A", DataType::kString, 20)}));
  ASSERT_TRUE(r.Insert(Tuple{Value("shared-key")}).ok());
  ASSERT_TRUE(s.Insert(Tuple{Value("shared-key")}).ok());
  // By value: TupleAt materializes a row from the columnar store.
  const Value from_r = r.TupleAt(0).at(0);
  const Value from_s = s.TupleAt(0).at(0);
  EXPECT_EQ(from_r.string_pool_index(), from_s.string_pool_index());
  EXPECT_EQ(from_r.string_id(), from_s.string_id());
  EXPECT_EQ(from_r, from_s);
}

TEST(Value, CrossPoolContentEquality) {
  StringPool pool_a;
  StringPool pool_b;
  const Value va("same text", pool_a);
  const Value vb("same text", pool_b);
  ASSERT_NE(va.string_pool_index(), vb.string_pool_index());
  // Different pools, equal content: equal, equal hash, not less-than.
  EXPECT_EQ(va, vb);
  EXPECT_EQ(va.Hash(), vb.Hash());
  EXPECT_EQ(va.Compare(vb), std::strong_ordering::equal);
  const Value vc("other text", pool_b);
  EXPECT_NE(va, vc);
}

TEST(Value, HashStableAcrossInterningOrder) {
  // Hashes depend on content only, never on interning order or pool: two
  // pools interning the same strings in opposite orders (hence with
  // different ids) must agree on every hash.
  StringPool forward;
  StringPool backward;
  const std::string texts[] = {"alpha", "beta", "gamma", ""};
  for (const std::string& t : texts) (void)Value(t, forward);
  for (int i = 3; i >= 0; --i) (void)Value(texts[i], backward);
  for (const std::string& t : texts) {
    const Value vf(t, forward);
    const Value vb(t, backward);
    EXPECT_EQ(vf.Hash(), vb.Hash()) << "text: '" << t << "'";
    EXPECT_EQ(vf.Hash(), Value(t).Hash()) << "text: '" << t << "'";
  }
}

TEST(Value, InterningIsIdempotentPerPool) {
  StringPool pool;
  const Value a("dup", pool);
  const Value b("dup", pool);
  EXPECT_EQ(a.string_id(), b.string_id());
  EXPECT_EQ(pool.size(), 1);
  (void)Value("other", pool);
  EXPECT_EQ(pool.size(), 2);
}

TEST(StringPool, ConcurrentInterningIsConsistent) {
  // Racing interns of overlapping texts must agree on ids and round-trip
  // every text (exercised under the ThreadSanitizer CI job).
  StringPool pool;
  std::vector<uint32_t> ids(64);
  ParallelFor(64, 8, [&](int64_t i) {
    const std::string text = "key" + std::to_string(i % 8);
    const Value v(text, pool);
    ids[i] = v.string_id();
    EXPECT_EQ(v.AsString(), text);
  });
  EXPECT_EQ(pool.size(), 8);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(ids[i], ids[i % 8]) << "text index " << i;
  }
}

TEST(Value, StringDistinctAndIndexAcrossMixedPools) {
  // A relation whose tuples mix pools still deduplicates by content.
  StringPool other;
  Relation rel("R", Schema({Attribute::Make("A", DataType::kString, 20)}));
  ASSERT_TRUE(rel.Insert(Tuple{Value("x")}).ok());
  ASSERT_TRUE(rel.Insert(Tuple{Value("x", other)}).ok());
  ASSERT_TRUE(rel.Insert(Tuple{Value("y")}).ok());
  EXPECT_EQ(rel.DistinctCount(), 2);
  EXPECT_EQ(rel.Distinct().cardinality(), 2);
}

}  // namespace
}  // namespace eve
