// Equivalence tests for the optimized executor: the cost-ordered row-id
// join engine must produce the same result *sets* (and, under bag
// semantics, multisets) as the reference executor for every option
// combination, across single-relation, multi-join, theta-join, and
// empty-result views.  Also covers the per-Relation index-cache
// invalidation contract.

#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/executor.h"
#include "common/random.h"
#include "esql/parser.h"
#include "storage/generator.h"
#include "storage/hash_index.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<int>>& rows) {
  std::vector<Attribute> schema;
  for (const std::string& a : attrs) {
    schema.push_back(Attribute::Make(a, DataType::kInt64, 10));
  }
  Relation rel(name, Schema(std::move(schema)));
  for (const auto& row : rows) {
    Tuple t;
    for (int v : row) t.Append(Value(static_cast<int64_t>(v)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

// Sorted distinct-tuple rendering, as a canonical comparison key.
std::vector<Tuple> SortedTuples(const Relation& rel) {
  std::vector<Tuple> tuples = rel.CopyTuples();
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

// Executes `view` with every optimization combination and checks all of
// them against the reference executor.
void ExpectAllModesMatchReference(const ViewDefinition& view,
                                  const RelationProvider& provider,
                                  bool distinct = true) {
  ExecOptions ref_opts;
  ref_opts.distinct = distinct;
  const auto reference = ExecuteViewReference(view, provider, ref_opts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const bool reorder : {false, true}) {
    for (const bool cache : {false, true}) {
      ExecOptions opts;
      opts.distinct = distinct;
      opts.reorder_joins = reorder;
      opts.use_index_cache = cache;
      const auto optimized = ExecuteView(view, provider, opts);
      ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
      EXPECT_EQ(optimized->schema().ToString(), reference->schema().ToString());
      // Under bag semantics the multisets must match (join reordering
      // never changes duplicate counts), so compare sorted tuple lists.
      EXPECT_EQ(SortedTuples(*optimized), SortedTuples(*reference))
          << "reorder=" << reorder << " cache=" << cache << "\noptimized:\n"
          << optimized->ToString() << "reference:\n"
          << reference->ToString();
    }
  }
}

TEST(ExecutorEquivalence, SingleRelationSelection) {
  MapProvider provider;
  ASSERT_TRUE(provider
                  .Add(MakeRelation("R", {"A", "B"},
                                    {{1, 10}, {2, 20}, {3, 30}, {2, 20}}))
                  .ok());
  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.B FROM R WHERE R.A >= 2");
  ExpectAllModesMatchReference(view, provider, /*distinct=*/true);
  ExpectAllModesMatchReference(view, provider, /*distinct=*/false);
}

TEST(ExecutorEquivalence, EmptyResultShortCircuit) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}, {2}})).ok());
  ASSERT_TRUE(provider.Add(MakeRelation("S", {"A", "B"}, {{1, 5}})).ok());
  ASSERT_TRUE(provider.Add(MakeRelation("T", {"B"}, {{5}})).ok());
  // R.A > 100 empties the working set before any join.
  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT R.A, T.B FROM R, S, T "
      "WHERE (R.A > 100) AND (R.A = S.A) AND (S.B = T.B)");
  ExpectAllModesMatchReference(view, provider);
}

TEST(ExecutorEquivalence, ThetaJoinAndCrossProduct) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}, {5}, {9}})).ok());
  ASSERT_TRUE(provider.Add(MakeRelation("S", {"B"}, {{3}, {4}, {8}})).ok());
  ExpectAllModesMatchReference(
      Parse("CREATE VIEW V AS SELECT R.A, S.B FROM R, S WHERE R.A < S.B"),
      provider);
  // Pure cross product (no join clause at all).
  ExpectAllModesMatchReference(
      Parse("CREATE VIEW V AS SELECT R.A, S.B FROM R, S"), provider,
      /*distinct=*/false);
}

TEST(ExecutorEquivalence, MultiJoinWithSelectionsAndAliases) {
  MapProvider provider;
  ASSERT_TRUE(provider
                  .Add(MakeRelation("R", {"K", "X"},
                                    {{1, 7}, {2, 8}, {3, 9}, {1, 6}}))
                  .ok());
  ASSERT_TRUE(provider
                  .Add(MakeRelation("S", {"K", "Y"},
                                    {{1, 9}, {2, 10}, {3, 11}, {3, 12}}))
                  .ok());
  ASSERT_TRUE(provider.Add(MakeRelation("T", {"K", "Z"}, {{1, 11}, {3, 13}})).ok());
  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT a.X, b.Y, c.Z FROM R a, S b, T c "
      "WHERE (a.K = b.K) AND (b.K = c.K) AND (b.Y >= 9)");
  ExpectAllModesMatchReference(view, provider, /*distinct=*/true);
  ExpectAllModesMatchReference(view, provider, /*distinct=*/false);
}

// Randomized four-way joins: star and chain shapes with local selections,
// compared against the reference executor under both semantics.
TEST(ExecutorEquivalence, RandomizedFourWayJoins) {
  Random rng(21);
  for (int round = 0; round < 8; ++round) {
    GeneratorOptions gen;
    gen.cardinality = 40 + 10 * (round % 3);
    gen.num_attributes = 2;
    gen.key_domain = 8 + round;
    gen.value_domain = 40;
    MapProvider provider;
    for (const char* name : {"R", "S", "T", "U"}) {
      ASSERT_TRUE(provider.Add(GenerateRelation(name, gen, &rng)).ok());
    }
    // Chain: R-S-T-U.
    ExpectAllModesMatchReference(
        Parse("CREATE VIEW V AS SELECT R.A, S.B, T.B AS TB, U.B AS UB "
              "FROM R, S, T, U WHERE (R.A = S.A) AND (S.A = T.A) "
              "AND (T.A = U.A) AND (R.B >= 10)"),
        provider, /*distinct=*/round % 2 == 0);
    // Star: S, T, U all joined to R.
    ExpectAllModesMatchReference(
        Parse("CREATE VIEW V AS SELECT R.B, S.B AS SB, T.B AS TB, U.B AS UB "
              "FROM R, S, T, U WHERE (R.A = S.A) AND (R.A = T.A) "
              "AND (R.A = U.A) AND (U.B < 35)"),
        provider, /*distinct=*/round % 2 == 1);
  }
}

// The per-Relation index cache must be dropped on mutation: a stale index
// would miss freshly inserted rows or return ghost row ids.
TEST(IndexCache, InvalidatedOnMutation) {
  Relation rel = MakeRelation("R", {"A", "B"}, {{1, 10}, {2, 20}, {1, 30}});
  const HashIndex& index = rel.Index(0);
  EXPECT_EQ(index.Lookup(Value(static_cast<int64_t>(1))).size(), 2u);
  // Same column twice: cache returns the same instance.
  EXPECT_EQ(&rel.Index(0), &index);

  ASSERT_TRUE(rel.Insert(Tuple{Value(static_cast<int64_t>(1)),
                               Value(static_cast<int64_t>(40))})
                  .ok());
  EXPECT_EQ(rel.Index(0).Lookup(Value(static_cast<int64_t>(1))).size(), 3u);

  rel.Erase(Tuple{Value(static_cast<int64_t>(2)), Value(static_cast<int64_t>(20))});
  EXPECT_EQ(rel.Index(0).Lookup(Value(static_cast<int64_t>(2))).size(), 0u);

  rel.Clear();
  EXPECT_EQ(rel.Index(0).DistinctKeys(), 0);
}

// Executing through a provider twice with an interleaved insert must see
// the new tuple even with the index cache enabled.
TEST(IndexCache, ExecuteSeesMutationsBetweenCalls) {
  MapProvider provider;
  ASSERT_TRUE(provider.Add(MakeRelation("R", {"A"}, {{1}, {2}})).ok());
  ASSERT_TRUE(provider.Add(MakeRelation("S", {"A", "B"}, {{1, 5}, {2, 6}})).ok());
  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT R.A, S.B FROM R, S WHERE R.A = S.A");

  const auto before = ExecuteView(view, provider);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->cardinality(), 2);

  // MapProvider stores relations by value; mutate through Resolve.
  auto resolved = provider.Resolve("", "S");
  ASSERT_TRUE(resolved.ok());
  const_cast<Relation*>(resolved.value())
      ->InsertUnchecked(
          Tuple{Value(static_cast<int64_t>(2)), Value(static_cast<int64_t>(7))});

  const auto after = ExecuteView(view, provider);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->cardinality(), 3);
  EXPECT_TRUE(after->ContainsTuple(
      Tuple{Value(static_cast<int64_t>(2)), Value(static_cast<int64_t>(7))}));
}

}  // namespace
}  // namespace eve
