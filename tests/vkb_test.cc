// View Knowledge Base tests: registration, affected-view lookup, extent
// management, definition replacement with history, and death.

#include <gtest/gtest.h>

#include "esql/parser.h"
#include "vkb/view_knowledge_base.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(Vkb, DefineDuplicateAndDrop) {
  ViewKnowledgeBase vkb;
  ASSERT_TRUE(vkb.Define(Parse("CREATE VIEW V AS SELECT R.A FROM R")).ok());
  EXPECT_TRUE(vkb.Has("V"));
  EXPECT_FALSE(vkb.Define(Parse("CREATE VIEW V AS SELECT R.A FROM R")).ok());
  EXPECT_TRUE(vkb.Drop("V").ok());
  EXPECT_FALSE(vkb.Drop("V").ok());
  // Invalid definitions are rejected at registration.
  ViewDefinition bad;
  bad.name = "W";
  EXPECT_FALSE(vkb.Define(bad).ok());
}

TEST(Vkb, ViewsReferencingResolvesSites) {
  ViewKnowledgeBase vkb;
  ASSERT_TRUE(vkb.Define(Parse("CREATE VIEW V1 AS SELECT R.A FROM R")).ok());
  ASSERT_TRUE(
      vkb.Define(Parse("CREATE VIEW V2 AS SELECT R.A FROM IS2.R")).ok());
  ASSERT_TRUE(vkb.Define(Parse("CREATE VIEW V3 AS SELECT S.B FROM S")).ok());

  const std::map<std::string, std::string> site_of{{"R", "IS1"}, {"S", "IS3"}};
  // V1 references bare R resolved to IS1; V2 pins IS2 explicitly.
  EXPECT_EQ(vkb.ViewsReferencing(RelationId{"IS1", "R"}, site_of),
            (std::vector<std::string>{"V1"}));
  EXPECT_EQ(vkb.ViewsReferencing(RelationId{"IS2", "R"}, site_of),
            (std::vector<std::string>{"V2"}));
  EXPECT_EQ(vkb.ViewsReferencing(RelationId{"IS3", "S"}, site_of),
            (std::vector<std::string>{"V3"}));
  EXPECT_TRUE(vkb.ViewsReferencing(RelationId{"IS9", "Q"}, site_of).empty());
}

TEST(Vkb, ReplaceDefinitionRecordsHistoryAndResetsExtent) {
  ViewKnowledgeBase vkb;
  ASSERT_TRUE(vkb.Define(Parse("CREATE VIEW V AS SELECT R.A FROM R")).ok());
  Relation extent("V", Schema({Attribute::Make("A", DataType::kInt64)}));
  extent.InsertUnchecked(Tuple{Value(1)});
  ASSERT_TRUE(vkb.SetExtent("V", std::move(extent)).ok());
  EXPECT_TRUE(vkb.Get("V").value()->materialized);

  ASSERT_TRUE(vkb.ReplaceDefinition("V",
                                    Parse("CREATE VIEW V AS SELECT S.A FROM S"),
                                    "delete-relation IS1.R")
                  .ok());
  const ViewEntry* entry = vkb.Get("V").value();
  EXPECT_FALSE(entry->materialized);  // Needs rematerialization.
  ASSERT_EQ(entry->history.size(), 1u);
  EXPECT_EQ(entry->history[0].trigger, "delete-relation IS1.R");
  EXPECT_NE(entry->history[0].old_version, entry->history[0].new_version);
  EXPECT_EQ(entry->definition.from_items[0].relation, "S");
}

TEST(Vkb, MarkDeadIsTerminalInLookups) {
  ViewKnowledgeBase vkb;
  ASSERT_TRUE(vkb.Define(Parse("CREATE VIEW V AS SELECT R.A FROM R")).ok());
  ASSERT_TRUE(vkb.MarkDead("V", "delete-relation IS1.R").ok());
  EXPECT_EQ(vkb.Get("V").value()->state, ViewState::kDead);
  // Dead views are skipped by affected-view search.
  EXPECT_TRUE(vkb.ViewsReferencing(RelationId{"IS1", "R"}, {{"R", "IS1"}})
                  .empty());
  ASSERT_EQ(vkb.Get("V").value()->history.size(), 1u);
  EXPECT_TRUE(vkb.Get("V").value()->history[0].new_version.empty());
}

TEST(Vkb, ViewNamesSorted) {
  ViewKnowledgeBase vkb;
  ASSERT_TRUE(vkb.Define(Parse("CREATE VIEW Beta AS SELECT R.A FROM R")).ok());
  ASSERT_TRUE(vkb.Define(Parse("CREATE VIEW Alpha AS SELECT R.A FROM R")).ok());
  EXPECT_EQ(vkb.ViewNames(), (std::vector<std::string>{"Alpha", "Beta"}));
}

}  // namespace
}  // namespace eve
