// Maintenance-simulator tests: Algorithm 1 executed on real tuples.
//   * Incremental maintenance equals recomputation (insert and delete),
//     including randomized update streams.
//   * Observed message/byte counts equal the analytic model's expectation
//     on uniform workloads engineered to match the model's assumptions
//     (the paper's §8 "future work" validation).

#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/executor.h"
#include "common/random.h"
#include "maintenance/maintainer.h"
#include "esql/parser.h"
#include "plan/plan_cache.h"
#include "qc/cost_model.h"
#include "storage/generator.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<int>>& rows,
                      int attr_bytes = 50) {
  std::vector<Attribute> schema;
  for (const std::string& a : attrs) {
    schema.push_back(Attribute::Make(a, DataType::kInt64, attr_bytes));
  }
  Relation rel(name, Schema(std::move(schema)));
  for (const auto& row : rows) {
    Tuple t;
    for (int v : row) t.Append(Value(static_cast<int64_t>(v)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

class MaintainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(space_
                    .AddRelation("IS1", MakeRelation("R", {"K", "X"},
                                                     {{1, 10}, {2, 20}, {3, 30}}))
                    .ok());
    ASSERT_TRUE(space_
                    .AddRelation("IS2", MakeRelation("S", {"K", "Y"},
                                                     {{1, 100}, {2, 200}, {4, 400}}))
                    .ok());
    view_ = Parse(
        "CREATE VIEW V AS SELECT R.X, S.Y FROM R, S WHERE R.K = S.K");
  }

  InformationSpace space_;
  ViewDefinition view_;
};

TEST_F(MaintainerTest, InsertMaintainsExtent) {
  ViewMaintainer maintainer(space_);
  auto extent = maintainer.Recompute(view_);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->cardinality(), 2);  // K=1, K=2 join.

  // Insert R(4, 40): joins S(4, 400).
  const DataUpdate update{UpdateKind::kInsert, RelationId{"IS1", "R"},
                          Tuple{Value(4), Value(40)}};
  ASSERT_TRUE(space_.ApplyDataUpdate(update).ok());
  const auto counters = maintainer.ProcessUpdate(view_, update, &extent.value());
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  EXPECT_EQ(counters->tuples_added, 1);
  EXPECT_TRUE(extent->ContainsTuple(Tuple{Value(40), Value(400)}));

  const auto oracle = maintainer.Recompute(view_);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(SetEquals(extent.value(), oracle.value()));
}

TEST_F(MaintainerTest, DeleteMaintainsExtent) {
  ViewMaintainer maintainer(space_);
  auto extent = maintainer.Recompute(view_);
  ASSERT_TRUE(extent.ok());

  const DataUpdate update{UpdateKind::kDelete, RelationId{"IS1", "R"},
                          Tuple{Value(1), Value(10)}};
  // Maintain first, then apply to the space (either order is valid).
  const auto counters = maintainer.ProcessUpdate(view_, update, &extent.value());
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tuples_removed, 1);
  ASSERT_TRUE(space_.ApplyDataUpdate(update).ok());

  const auto oracle = maintainer.Recompute(view_);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(SetEquals(extent.value(), oracle.value()));
}

TEST_F(MaintainerTest, NonMatchingUpdateTouchesNothing) {
  ViewMaintainer maintainer(space_);
  auto extent = maintainer.Recompute(view_);
  ASSERT_TRUE(extent.ok());
  const DataUpdate update{UpdateKind::kInsert, RelationId{"IS1", "R"},
                          Tuple{Value(99), Value(990)}};
  ASSERT_TRUE(space_.ApplyDataUpdate(update).ok());
  const auto counters = maintainer.ProcessUpdate(view_, update, &extent.value());
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tuples_added, 0);
  // The delta still travels (notification + round trip to S's site).
  EXPECT_GE(counters->messages, 1);
}

TEST_F(MaintainerTest, UpdateOfUnreferencedRelationIsFree) {
  ASSERT_TRUE(space_.AddRelation("IS3", MakeRelation("Z", {"Q"}, {{1}})).ok());
  ViewMaintainer maintainer(space_);
  auto extent = maintainer.Recompute(view_);
  ASSERT_TRUE(extent.ok());
  const DataUpdate update{UpdateKind::kInsert, RelationId{"IS3", "Z"},
                          Tuple{Value(2)}};
  const auto counters = maintainer.ProcessUpdate(view_, update, &extent.value());
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->messages, 0);
  EXPECT_EQ(counters->bytes, 0);
}

TEST_F(MaintainerTest, LocalConditionFiltersDeltaAtOrigin) {
  const ViewDefinition filtered = Parse(
      "CREATE VIEW V AS SELECT R.X, S.Y FROM R, S "
      "WHERE (R.K = S.K) AND (R.X < 15)");
  ViewMaintainer maintainer(space_);
  auto extent = maintainer.Recompute(filtered);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->cardinality(), 1);  // Only R(1,10).

  // Insert a tuple failing the local condition: the delta dies at the
  // origin, nothing is shipped to IS2.
  const DataUpdate update{UpdateKind::kInsert, RelationId{"IS1", "R"},
                          Tuple{Value(4), Value(40)}};
  ASSERT_TRUE(space_.ApplyDataUpdate(update).ok());
  const auto counters =
      maintainer.ProcessUpdate(filtered, update, &extent.value());
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tuples_added, 0);
  // Notification only: origin hosts no other view relation and the empty
  // delta still triggers the remote query round trip in Algorithm 1; our
  // simulator ships the (empty) delta, so bytes stay at notification size.
  EXPECT_EQ(counters->bytes, 100 + 0 + 0);
}

// Interleaved AddTuple/Erase mutations (through data updates) with
// Recompute over a PlanCache: every mutation must invalidate the cached
// prepared plan, the per-column indexes, and the hash column, so each
// recomputation over the columnar store matches the reference executor on
// the current data.
TEST(MaintainerColumnar, InterleavedMutationAndRecompute) {
  InformationSpace space;
  ASSERT_TRUE(space
                  .AddRelation("IS1", MakeRelation("R", {"K", "X"},
                                                   {{1, 10}, {2, 20}, {3, 30}}))
                  .ok());
  ASSERT_TRUE(space
                  .AddRelation("IS2", MakeRelation("S", {"K", "Y"},
                                                   {{1, 100}, {2, 200}, {4, 400}}))
                  .ok());
  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.X, S.Y FROM R, S WHERE R.K = S.K");
  PlanCache cache;
  const ViewMaintainer maintainer(space, MaintainerOptions{}, &cache);
  Random rng(13);
  for (int step = 0; step < 40; ++step) {
    DataUpdate update;
    const std::string rel_name = rng.Uniform(2) == 0 ? "R" : "S";
    const std::string site = rel_name == "R" ? "IS1" : "IS2";
    const Relation* rel = space.Resolve(site, rel_name).value();
    if (!rel->empty() && rng.Uniform(3) == 0) {
      update.kind = UpdateKind::kDelete;
      update.tuple = rel->TupleAt(static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(rel->cardinality()))));
    } else {
      update.kind = UpdateKind::kInsert;
      update.tuple = Tuple{Value(static_cast<int64_t>(rng.Uniform(5))),
                           Value(static_cast<int64_t>(rng.Uniform(50)))};
    }
    update.relation = RelationId{site, rel_name};
    ASSERT_TRUE(space.ApplyDataUpdate(update).ok());

    const auto recomputed = maintainer.Recompute(view);
    ASSERT_TRUE(recomputed.ok()) << recomputed.status().ToString();
    ExecOptions ref_opts;
    ref_opts.distinct = false;  // Recompute keeps bag semantics.
    const auto reference = ExecuteViewReference(view, space, ref_opts);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    std::vector<Tuple> got = recomputed->CopyTuples();
    std::vector<Tuple> want = reference->CopyTuples();
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "step " << step;
  }
  // Every round mutated a base relation first, so the cached plan was
  // found stale and replanned each time; an unmutated round then hits.
  EXPECT_GT(cache.stats().replans, 0);
  ASSERT_TRUE(maintainer.Recompute(view).ok());
  EXPECT_GT(cache.stats().hits, 0);
}

// Randomized equivalence: a stream of random inserts/deletes maintained
// incrementally always equals recomputation.
TEST(MaintainerRandomized, StreamMatchesRecompute) {
  Random rng(11);
  InformationSpace space;
  GeneratorOptions gen;
  gen.cardinality = 80;
  gen.num_attributes = 2;
  gen.key_domain = 20;
  gen.value_domain = 40;
  ASSERT_TRUE(space.AddRelation("IS1", GenerateRelation("R", gen, &rng)).ok());
  ASSERT_TRUE(space.AddRelation("IS2", GenerateRelation("S", gen, &rng)).ok());
  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT R.A, R.B, S.B AS SB FROM R, S "
      "WHERE R.A = S.A");

  ViewMaintainer maintainer(space);
  auto extent = maintainer.Recompute(view);
  ASSERT_TRUE(extent.ok());

  for (int step = 0; step < 60; ++step) {
    const bool insert = rng.Bernoulli(0.6);
    const std::string rel_name = rng.Bernoulli(0.5) ? "R" : "S";
    const std::string site = rel_name == "R" ? "IS1" : "IS2";
    DataUpdate update;
    update.relation = RelationId{site, rel_name};
    if (insert) {
      update.kind = UpdateKind::kInsert;
      update.tuple = Tuple{Value(static_cast<int64_t>(rng.Uniform(20))),
                           Value(static_cast<int64_t>(rng.Uniform(40)))};
      ASSERT_TRUE(space.ApplyDataUpdate(update).ok());
      ASSERT_TRUE(
          maintainer.ProcessUpdate(view, update, &extent.value()).ok());
    } else {
      const Relation* rel = space.Resolve(site, rel_name).value();
      if (rel->empty()) continue;
      update.kind = UpdateKind::kDelete;
      update.tuple = rel->TupleAt(static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(rel->cardinality()))));
      ASSERT_TRUE(
          maintainer.ProcessUpdate(view, update, &extent.value()).ok());
      ASSERT_TRUE(space.ApplyDataUpdate(update).ok());
    }
    const auto oracle = maintainer.Recompute(view);
    ASSERT_TRUE(oracle.ok());
    ASSERT_TRUE(SetEquals(extent.value(), oracle.value())) << "step " << step;
  }
}

// Model-vs-simulation: on a uniform two-site view whose data is engineered
// to the model's assumptions, observed messages equal the analytic CF_M and
// observed bytes land close to the analytic CF_T expectation.
TEST(ModelValidation, SimulatedCostsTrackAnalyticModel) {
  Random rng(21);
  InformationSpace space;
  // R at IS1, S at IS2; join via keys with controlled selectivity.
  GeneratorOptions gen;
  gen.cardinality = 400;
  gen.num_attributes = 2;
  gen.attribute_bytes = 50;
  gen.key_domain = 200;  // js = 1/200 = 0.005.
  ASSERT_TRUE(space.AddRelation("IS1", GenerateRelation("R", gen, &rng)).ok());
  ASSERT_TRUE(space.AddRelation("IS2", GenerateRelation("S", gen, &rng)).ok());
  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.B, S.B AS SB FROM R, S WHERE R.A = S.A");

  ViewMaintainer maintainer(space);
  auto extent = maintainer.Recompute(view);
  ASSERT_TRUE(extent.ok());

  // Analytic per-update expectation for an update at R.
  ViewCostInput input;
  input.join_selectivity = 0.005;
  input.relations.push_back(CostRelation{RelationId{"IS1", "R"}, 400, 100, 1.0});
  input.relations.push_back(CostRelation{RelationId{"IS2", "S"}, 400, 100, 1.0});
  const CostFactors analytic = SingleUpdateCost(input, 0, {}).value();

  MaintenanceCounters total;
  const int kUpdates = 200;
  for (int i = 0; i < kUpdates; ++i) {
    DataUpdate update{UpdateKind::kInsert, RelationId{"IS1", "R"},
                      Tuple{Value(static_cast<int64_t>(rng.Uniform(200))),
                            Value(static_cast<int64_t>(rng.Uniform(1000)))}};
    ASSERT_TRUE(space.ApplyDataUpdate(update).ok());
    const auto counters = maintainer.ProcessUpdate(view, update, &extent.value());
    ASSERT_TRUE(counters.ok());
    total += *counters;
  }
  // Messages are deterministic: notification + one round trip per update.
  EXPECT_DOUBLE_EQ(static_cast<double>(total.messages) / kUpdates,
                   analytic.messages);
  // Bytes fluctuate with join fan-out; the mean should track the model
  // within 15% (|S| grows slightly as R-inserts accumulate -- the paper's
  // model assumes |R| static, §6.1 assumption 5).
  const double mean_bytes = static_cast<double>(total.bytes) / kUpdates;
  EXPECT_NEAR(mean_bytes, analytic.bytes, analytic.bytes * 0.15);
}

TEST(MaintainerErrors, SelfJoinUnimplemented) {
  InformationSpace space;
  ASSERT_TRUE(space.AddRelation("IS1", MakeRelation("R", {"K"}, {{1}})).ok());
  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT a.K, b.K AS K2 FROM R a, R b "
            "WHERE a.K = b.K");
  ViewMaintainer maintainer(space);
  Relation extent = maintainer.Recompute(view).value();
  const DataUpdate update{UpdateKind::kInsert, RelationId{"IS1", "R"},
                          Tuple{Value(2)}};
  const auto counters = maintainer.ProcessUpdate(view, update, &extent);
  EXPECT_EQ(counters.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace eve
