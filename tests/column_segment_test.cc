// Typed packed column segments (storage/column_segment.h) and their
// branch-free kernels (storage/column_kernel.h): promotion / demotion
// round-trips (NULLs, NaN doubles, cross-pool strings), kernel equivalence
// against the per-row EvalCompOp / Value::Hash golden, batched multi-tuple
// erase vs repeated single Erase, and prepared-plan revalidation across a
// promote -> mutate -> demote sequence.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "algebra/executor.h"
#include "algebra/provider.h"
#include "esql/parser.h"
#include "expr/comp_op.h"
#include "plan/plan_cache.h"
#include "plan/planner.h"
#include "storage/column_kernel.h"
#include "storage/column_segment.h"
#include "storage/relation.h"
#include "storage/tuple.h"
#include "types/string_pool.h"
#include "types/value.h"

namespace eve {
namespace {

using Encoding = ColumnSegment::Encoding;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<Value> Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value(x));
  return out;
}

void ExpectRoundTrips(const ColumnSegment& seg,
                      const std::vector<Value>& golden) {
  ASSERT_EQ(seg.size(), static_cast<int64_t>(golden.size()));
  for (int64_t i = 0; i < seg.size(); ++i) {
    // Compare() distinguishes what operator== blurs (INT 3 vs DOUBLE 3.0),
    // so a round-trip that silently changed the tag would be caught.
    EXPECT_EQ(seg.ValueAt(i).Compare(golden[static_cast<size_t>(i)]),
              std::strong_ordering::equal)
        << "row " << i << ": " << seg.ValueAt(i).ToString() << " vs "
        << golden[static_cast<size_t>(i)].ToString();
    EXPECT_EQ(seg.ValueAt(i).type(), golden[static_cast<size_t>(i)].type())
        << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Promotion / demotion round-trips.

TEST(ColumnSegment, UniformIntsPack) {
  const std::vector<Value> vals = Ints({5, -1, 0, 1 << 20});
  const ColumnSegment seg = ColumnSegment::FromValues(vals);
  EXPECT_EQ(seg.encoding(), Encoding::kInt64);
  EXPECT_TRUE(seg.all_int64());
  EXPECT_FALSE(seg.has_exceptions());
  ExpectRoundTrips(seg, vals);
}

TEST(ColumnSegment, SparseExceptionsStayPacked) {
  // 32 ints + one NULL + one NaN double: well under MaxExceptions(34), so
  // the column stays packed with a two-entry sidecar.
  std::vector<Value> vals;
  for (int64_t i = 0; i < 16; ++i) vals.push_back(Value(i));
  vals.push_back(Value());      // NULL.
  vals.push_back(Value(kNaN));  // NaN double.
  for (int64_t i = 16; i < 32; ++i) vals.push_back(Value(i));
  const ColumnSegment seg = ColumnSegment::FromValues(vals);
  EXPECT_EQ(seg.encoding(), Encoding::kInt64);
  EXPECT_TRUE(seg.has_exceptions());
  EXPECT_FALSE(seg.all_int64());  // The historic flag sees the NULL.
  ASSERT_EQ(seg.exception_rows().size(), 2u);
  EXPECT_EQ(seg.exception_rows()[0], 16);
  EXPECT_EQ(seg.exception_rows()[1], 17);
  EXPECT_TRUE(seg.FindException(16) != nullptr);
  EXPECT_TRUE(seg.FindException(15) == nullptr);
  ExpectRoundTrips(seg, vals);
  // NaN round-trips as a NaN double, not as the placeholder word.
  EXPECT_TRUE(std::isnan(seg.ValueAt(17).AsDouble()));
}

TEST(ColumnSegment, GenuinelyMixedGoesTagged) {
  // Half ints, half doubles: exceptions would exceed the sidecar bound, so
  // FromValues picks the tagged layout directly.
  std::vector<Value> vals;
  for (int64_t i = 0; i < 16; ++i) {
    vals.push_back(Value(i));
    vals.push_back(Value(static_cast<double>(i) + 0.5));
  }
  const ColumnSegment seg = ColumnSegment::FromValues(vals);
  EXPECT_EQ(seg.encoding(), Encoding::kTagged);
  EXPECT_FALSE(seg.all_int64());
  ExpectRoundTrips(seg, vals);
}

TEST(ColumnSegment, UniformStringsPackWithCrossPoolException) {
  StringPool other;
  std::vector<Value> vals;
  for (int i = 0; i < 12; ++i) vals.push_back(Value("s" + std::to_string(i % 4)));
  vals.push_back(Value("s1", other));  // Same text, different pool.
  vals.push_back(Value());             // NULL.
  const ColumnSegment seg = ColumnSegment::FromValues(vals);
  EXPECT_EQ(seg.encoding(), Encoding::kString);
  EXPECT_FALSE(seg.all_int64());
  EXPECT_EQ(seg.exception_rows().size(), 2u);
  ExpectRoundTrips(seg, vals);
  // Content equality across pools still holds through the sidecar.
  EXPECT_TRUE(seg.RowEqualsValue(12, Value("s1")));
  EXPECT_TRUE(seg.RowEqualsRow(12, seg, 1));  // "s1" packed at row 1.
  EXPECT_FALSE(seg.RowEqualsValue(13, Value("s1")));  // The NULL row.
}

TEST(ColumnSegment, AppendAdoptsFirstValueEncoding) {
  ColumnSegment ints;
  ints.Append(Value(static_cast<int64_t>(7)));
  EXPECT_EQ(ints.encoding(), Encoding::kInt64);

  ColumnSegment strs;
  strs.Append(Value("x"));
  EXPECT_EQ(strs.encoding(), Encoding::kString);

  ColumnSegment nulls;
  nulls.Append(Value());
  EXPECT_EQ(nulls.encoding(), Encoding::kTagged);
  EXPECT_FALSE(nulls.all_int64());
}

TEST(ColumnSegment, SidecarOverflowDemotesAndPreservesValues) {
  ColumnSegment seg;
  std::vector<Value> golden;
  auto push = [&](const Value& v) {
    seg.Append(v);
    golden.push_back(v);
  };
  push(Value(static_cast<int64_t>(1)));
  EXPECT_EQ(seg.encoding(), Encoding::kInt64);
  // Feed doubles until the sidecar bound forces a demotion; every value
  // must survive the rewrite bit-exact.
  int64_t i = 0;
  while (seg.encoding() == Encoding::kInt64) {
    push(Value(static_cast<double>(++i) + 0.25));
    ASSERT_LT(i, 100) << "demotion never happened";
  }
  EXPECT_EQ(seg.encoding(), Encoding::kTagged);
  EXPECT_FALSE(seg.has_exceptions());
  ExpectRoundTrips(seg, golden);
  // Demoted segments keep accepting anything.
  push(Value("now a string"));
  ExpectRoundTrips(seg, golden);
}

TEST(ColumnSegment, EraseRowsRemapsExceptionsAndPreservesPacking) {
  // Exceptions at rows 3 (NULL) and 7 (double); erase a packed row below,
  // one exception, and a packed row between them.
  std::vector<Value> vals = Ints({10, 11, 12, 0, 14, 15, 16, 0, 18, 19});
  vals[3] = Value();
  vals[7] = Value(7.5);
  ColumnSegment seg = ColumnSegment::FromValues(vals);
  ASSERT_EQ(seg.encoding(), Encoding::kInt64);

  const std::vector<int64_t> doomed = {1, 3, 5};
  seg.EraseRows(doomed);
  std::vector<Value> golden;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i != 1 && i != 3 && i != 5) golden.push_back(vals[i]);
  }
  EXPECT_EQ(seg.encoding(), Encoding::kInt64);  // Packing preserved.
  ASSERT_EQ(seg.exception_rows().size(), 1u);
  EXPECT_EQ(seg.exception_rows()[0], 4);  // Row 7, minus 3 doomed below it.
  ExpectRoundTrips(seg, golden);

  // Erasing everything resets to the pristine state: the next append is
  // free to pick a new encoding.
  std::vector<int64_t> all;
  for (int64_t r = 0; r < seg.size(); ++r) all.push_back(r);
  seg.EraseRows(all);
  EXPECT_TRUE(seg.empty());
  EXPECT_TRUE(seg.all_int64());  // Vacuously, like a fresh column.
  seg.Append(Value("fresh"));
  EXPECT_EQ(seg.encoding(), Encoding::kString);
}

TEST(ColumnSegment, AppendGatheredAdoptsAndFallsBack) {
  std::vector<Value> vals = Ints({0, 1, 2, 3, 4, 5, 6, 7});
  vals[2] = Value();  // One exception in the source.
  const ColumnSegment src = ColumnSegment::FromValues(vals);
  ASSERT_EQ(src.encoding(), Encoding::kInt64);

  // Pristine target adopts the packed encoding and honors exceptions.
  ColumnSegment dst;
  const std::vector<int64_t> rows = {7, 2, 2, 0, 5};
  dst.AppendGathered(src, rows.data(), rows.size());
  EXPECT_EQ(dst.encoding(), Encoding::kInt64);
  std::vector<Value> golden;
  for (int64_t r : rows) golden.push_back(vals[static_cast<size_t>(r)]);
  ExpectRoundTrips(dst, golden);

  // Gathering into an incompatible encoding falls back to generic appends
  // (string target fed ints routes every row through the sidecar/demote
  // machinery, never through a raw word copy).
  ColumnSegment strs;
  strs.Append(Value("seed"));
  strs.AppendGathered(src, rows.data(), rows.size());
  std::vector<Value> golden2{Value("seed")};
  golden2.insert(golden2.end(), golden.begin(), golden.end());
  ExpectRoundTrips(strs, golden2);
}

// ---------------------------------------------------------------------------
// Kernel equivalence against the per-row golden.

// A second pool that outlives the Values interned into it (cross-pool
// corpus entries reference it long after the builder returns).
StringPool& OtherPool() {
  static StringPool pool;
  return pool;
}

// The segment corpus: every encoding, with and without exceptions.
std::vector<std::vector<Value>> KernelCorpus() {
  StringPool& other = OtherPool();
  std::vector<std::vector<Value>> corpus;
  // Packed ints, no exceptions.
  corpus.push_back(Ints({5, 2, 9, 2, 7, 500, -3, 0}));
  // Packed ints with NULL / NaN / double / string exceptions.
  {
    std::vector<Value> v = Ints({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
    v[3] = Value();
    v[6] = Value(kNaN);
    v[9] = Value(2.0);  // Numerically equal to the int 2 elsewhere.
    corpus.push_back(std::move(v));
  }
  // Packed strings with a cross-pool and a NULL exception.
  {
    std::vector<Value> v;
    for (int i = 0; i < 10; ++i) v.push_back(Value("k" + std::to_string(i % 3)));
    v[4] = Value("k1", other);
    v[8] = Value();
    corpus.push_back(std::move(v));
  }
  // Tagged mixed.
  {
    std::vector<Value> v;
    for (int i = 0; i < 12; ++i) {
      v.push_back(i % 2 == 0 ? Value(static_cast<int64_t>(i))
                             : Value(static_cast<double>(i) + 0.5));
    }
    corpus.push_back(std::move(v));
  }
  return corpus;
}

std::vector<Value> RhsCorpus() {
  StringPool& other = OtherPool();
  return {Value(static_cast<int64_t>(2)), Value(2.0),  Value(2.5),
          Value(kNaN),                    Value(),     Value("k1"),
          Value("k1", other),             Value("zz")};
}

constexpr CompOp kAllOps[] = {CompOp::kLess,         CompOp::kLessEqual,
                              CompOp::kEqual,        CompOp::kGreaterEqual,
                              CompOp::kGreater,      CompOp::kNotEqual};

TEST(ColumnKernel, CompareConstMatchesGolden) {
  for (const std::vector<Value>& vals : KernelCorpus()) {
    const ColumnSegment seg = ColumnSegment::FromValues(vals);
    for (const Value& rhs : RhsCorpus()) {
      for (const CompOp op : kAllOps) {
        // Pre-set an alternating mask so the AND-fold (not just the raw
        // comparison) is verified.
        std::vector<uint8_t> mask(vals.size());
        for (size_t i = 0; i < mask.size(); ++i) mask[i] = i % 3 == 0 ? 0 : 1;
        std::vector<uint8_t> golden = mask;
        for (size_t i = 0; i < vals.size(); ++i) {
          golden[i] &= EvalCompOp(op, vals[i], rhs) ? 1 : 0;
        }
        AndCompareColumnConst(op, seg, rhs, mask.data());
        EXPECT_EQ(mask, golden)
            << CompOpToString(op) << " rhs=" << rhs.ToString()
            << " enc=" << static_cast<int>(seg.encoding());
      }
    }
  }
}

TEST(ColumnKernel, CompareColumnsMatchesGolden) {
  const auto corpus = KernelCorpus();
  for (const std::vector<Value>& lv : corpus) {
    for (const std::vector<Value>& rv : corpus) {
      const size_t n = std::min(lv.size(), rv.size());
      const std::vector<Value> lhs_vals(lv.begin(), lv.begin() + n);
      const std::vector<Value> rhs_vals(rv.begin(), rv.begin() + n);
      const ColumnSegment lhs = ColumnSegment::FromValues(lhs_vals);
      const ColumnSegment rhs = ColumnSegment::FromValues(rhs_vals);
      // Also pit packed against tagged layouts of the same data.
      const ColumnSegment rhs_tagged = ColumnSegment::TaggedFromValues(rhs_vals);
      for (const ColumnSegment* r : {&rhs, &rhs_tagged}) {
        for (const CompOp op : kAllOps) {
          std::vector<uint8_t> mask(n, 1);
          std::vector<uint8_t> golden(n, 1);
          for (size_t i = 0; i < n; ++i) {
            golden[i] = EvalCompOp(op, lhs_vals[i], rhs_vals[i]) ? 1 : 0;
          }
          AndCompareColumns(op, lhs, *r, mask.data());
          EXPECT_EQ(mask, golden) << CompOpToString(op);
        }
      }
    }
  }
}

TEST(ColumnKernel, CompareGatherMatchesGolden) {
  const auto corpus = KernelCorpus();
  for (const std::vector<Value>& lv : corpus) {
    const ColumnSegment lhs = ColumnSegment::FromValues(lv);
    // Gather with repeats and out-of-order rows.
    std::vector<int64_t> lrows;
    for (size_t i = 0; i < lv.size(); ++i) {
      lrows.push_back(static_cast<int64_t>((i * 5 + 3) % lv.size()));
    }
    const int64_t n = static_cast<int64_t>(lrows.size());
    // Column-vs-constant.
    for (const Value& rhs : RhsCorpus()) {
      for (const CompOp op : kAllOps) {
        std::vector<uint8_t> mask(lrows.size(), 1);
        std::vector<uint8_t> golden(lrows.size(), 1);
        for (int64_t i = 0; i < n; ++i) {
          golden[i] = EvalCompOp(op, lv[static_cast<size_t>(lrows[i])], rhs);
        }
        AndCompareGather(op, lhs, lrows.data(), nullptr, nullptr, &rhs, n,
                         mask.data());
        EXPECT_EQ(mask, golden) << CompOpToString(op);
      }
    }
    // Column-vs-column with independent row arrays.
    for (const std::vector<Value>& rv : corpus) {
      const ColumnSegment rhs = ColumnSegment::FromValues(rv);
      std::vector<int64_t> rrows;
      for (int64_t i = 0; i < n; ++i) {
        rrows.push_back((i * 7 + 1) % static_cast<int64_t>(rv.size()));
      }
      for (const CompOp op : kAllOps) {
        std::vector<uint8_t> mask(lrows.size(), 1);
        std::vector<uint8_t> golden(lrows.size(), 1);
        for (int64_t i = 0; i < n; ++i) {
          golden[i] = EvalCompOp(op, lv[static_cast<size_t>(lrows[i])],
                                 rv[static_cast<size_t>(rrows[i])]);
        }
        AndCompareGather(op, lhs, lrows.data(), &rhs, rrows.data(), nullptr, n,
                         mask.data());
        EXPECT_EQ(mask, golden) << CompOpToString(op);
      }
    }
  }
}

TEST(ColumnKernel, HashesMatchValueAndTupleHash) {
  for (const std::vector<Value>& vals : KernelCorpus()) {
    for (const bool tagged : {false, true}) {
      const ColumnSegment seg =
          tagged ? ColumnSegment::TaggedFromValues(vals)
                 : ColumnSegment::FromValues(vals);
      const int64_t n = seg.size();
      std::vector<size_t> hashes(static_cast<size_t>(n), 0);
      HashColumn(seg, hashes.data());
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(hashes[static_cast<size_t>(i)],
                  vals[static_cast<size_t>(i)].Hash())
            << "row " << i << " tagged=" << tagged;
      }
      // One FNV mix step per row reproduces the tuple-hash recurrence.
      std::vector<size_t> acc(static_cast<size_t>(n), kTupleHashBasis);
      MixHashColumn(seg, acc.data());
      std::vector<size_t> gather_acc(static_cast<size_t>(n), kTupleHashBasis);
      std::vector<int64_t> ident;
      for (int64_t i = 0; i < n; ++i) ident.push_back(i);
      MixHashColumnGather(seg, ident.data(), n, gather_acc.data());
      for (int64_t i = 0; i < n; ++i) {
        const size_t want =
            (kTupleHashBasis ^ vals[static_cast<size_t>(i)].Hash()) *
            kTupleHashPrime;
        EXPECT_EQ(acc[static_cast<size_t>(i)], want) << "row " << i;
        EXPECT_EQ(gather_acc[static_cast<size_t>(i)], want) << "row " << i;
      }
    }
  }
}

TEST(ColumnKernel, RelationTupleHashesMatchRowHash) {
  // End-to-end: the columnar hash pipeline over a relation mixing packed
  // ints (with exceptions) and packed strings equals Tuple::Hash per row.
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64, 10),
                            Attribute::Make("S", DataType::kString, 20)}));
  StringPool other;
  for (int64_t i = 0; i < 20; ++i) {
    Tuple t;
    if (i == 7) {
      t.Append(Value());
    } else if (i == 11) {
      t.Append(Value(static_cast<double>(i)));
    } else {
      t.Append(Value(i));
    }
    if (i == 13) {
      t.Append(Value("p" + std::to_string(i % 5), other));
    } else {
      t.Append(Value("p" + std::to_string(i % 5)));
    }
    rel.InsertUnchecked(std::move(t));
  }
  ASSERT_EQ(rel.Segment(0).encoding(), Encoding::kInt64);
  ASSERT_EQ(rel.Segment(1).encoding(), Encoding::kString);
  const std::vector<size_t> hashes = rel.ComputeTupleHashes();
  for (int64_t i = 0; i < rel.cardinality(); ++i) {
    EXPECT_EQ(hashes[static_cast<size_t>(i)], rel.TupleAt(i).Hash())
        << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Batched erase.

Relation MixedRelation() {
  Relation rel("R", Schema({Attribute::Make("K", DataType::kInt64, 10),
                            Attribute::Make("S", DataType::kString, 20)}));
  for (int64_t i = 0; i < 40; ++i) {
    Tuple t;
    if (i == 17) {
      t.Append(Value());  // One NULL exception in the packed key column.
    } else {
      t.Append(Value(i % 10));  // Duplicates across rows.
    }
    t.Append(Value("s" + std::to_string(i % 4)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

TEST(Relation, EraseBatchMatchesSequentialErase) {
  // Victims: duplicates (two equal victims must delete two rows), values
  // with many matching rows (only the first in scan order goes), misses,
  // and the NULL-carrying exception row.
  std::vector<Tuple> victims;
  victims.push_back(Tuple{Value(static_cast<int64_t>(3)), Value("s3")});
  victims.push_back(Tuple{Value(static_cast<int64_t>(3)), Value("s3")});
  victims.push_back(Tuple{Value(static_cast<int64_t>(7)), Value("s3")});
  victims.push_back(Tuple{Value(static_cast<int64_t>(99)), Value("s0")});
  victims.push_back(Tuple{Value(), Value("s1")});

  Relation batched = MixedRelation();
  Relation sequential = MixedRelation();
  int64_t removed_seq = 0;
  for (const Tuple& v : victims) removed_seq += sequential.Erase(v);
  const int64_t removed_batch = batched.EraseBatch(victims);

  EXPECT_EQ(removed_batch, removed_seq);
  EXPECT_GT(removed_batch, 0);
  // Order-sensitive comparison: the batch must keep surviving rows in the
  // exact order sequential erasure leaves them.
  const std::vector<Tuple> a = batched.CopyTuples();
  const std::vector<Tuple> b = sequential.CopyTuples();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
  // The packed key column survives the compaction packed.
  EXPECT_EQ(batched.Segment(0).encoding(), Encoding::kInt64);
  EXPECT_EQ(batched.Segment(1).encoding(), Encoding::kString);
}

TEST(Relation, EraseBatchNoMatchIsNoOp) {
  Relation rel = MixedRelation();
  const uint64_t before = rel.version();
  std::vector<Tuple> victims;
  victims.push_back(Tuple{Value(static_cast<int64_t>(123)), Value("nope")});
  EXPECT_EQ(rel.EraseBatch(victims), 0);
  EXPECT_EQ(rel.version(), before);  // No mutation stamp for a no-op.
  EXPECT_EQ(rel.EraseBatch({}), 0);
  EXPECT_EQ(rel.version(), before);

  // A matching batch bumps the version exactly once.
  std::vector<Tuple> hit;
  hit.push_back(Tuple{Value(static_cast<int64_t>(0)), Value("s0")});
  hit.push_back(Tuple{Value(static_cast<int64_t>(1)), Value("s1")});
  EXPECT_EQ(rel.EraseBatch(hit), 2);
  EXPECT_EQ(rel.version(), before + 1);
}

// ---------------------------------------------------------------------------
// Prepared plans over promoted relations.

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

void ExpectPreparedMatchesReference(const ViewDefinition& view,
                                    const RelationProvider& provider) {
  ExecOptions opts;
  const auto reference = ExecuteViewReference(view, provider, opts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const auto plan = PrepareView(view, provider, opts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto result = ExecutePrepared(**plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto sorted = [](const Relation& r) {
    std::vector<Tuple> ts = r.CopyTuples();
    std::sort(ts.begin(), ts.end());
    return ts;
  };
  EXPECT_EQ(sorted(*result), sorted(*reference))
      << "prepared:\n"
      << result->ToString() << "reference:\n"
      << reference->ToString();
}

TEST(PreparedView, MatchesReferenceOverPromotedAndExceptionColumns) {
  MapProvider provider;
  {
    // R: packed int key with one NULL and one double exception, packed
    // string payload with a cross-pool exception.
    Relation r("R", Schema({Attribute::Make("K", DataType::kInt64, 10),
                            Attribute::Make("S", DataType::kString, 20)}));
    StringPool& other = OtherPool();  // Outlives the provider's copy of r.
    for (int64_t i = 0; i < 30; ++i) {
      Tuple t;
      if (i == 5) {
        t.Append(Value());
      } else if (i == 9) {
        t.Append(Value(static_cast<double>(i % 6)));
      } else {
        t.Append(Value(i % 6));
      }
      t.Append(i == 12 ? Value("t1", other)
                       : Value("t" + std::to_string(i % 3)));
      r.InsertUnchecked(std::move(t));
    }
    EXPECT_EQ(r.Segment(0).encoding(), Encoding::kInt64);
    EXPECT_TRUE(r.Segment(0).has_exceptions());
    ASSERT_TRUE(provider.Add(r).ok());
  }
  {
    // S: fully packed int columns (the promoted steady state).
    Relation s("S", Schema({Attribute::Make("K", DataType::kInt64, 10),
                            Attribute::Make("Y", DataType::kInt64, 10)}));
    for (int64_t i = 0; i < 20; ++i) {
      s.InsertUnchecked(Tuple{Value(i % 6), Value(i * 10)});
    }
    EXPECT_TRUE(s.ColumnAllInt64(0));
    ASSERT_TRUE(provider.Add(s).ok());
  }
  ExpectPreparedMatchesReference(
      Parse("CREATE VIEW V AS SELECT R.S, S.Y FROM R, S "
            "WHERE (R.K = S.K) AND (S.Y >= 40)"),
      provider);
  ExpectPreparedMatchesReference(
      Parse("CREATE VIEW V AS SELECT R.K, R.S FROM R WHERE R.K >= 2"),
      provider);
  ExpectPreparedMatchesReference(
      Parse("CREATE VIEW V AS SELECT R.K, S.Y FROM R, S WHERE R.K < S.K"),
      provider);
}

TEST(PlanCache, RevalidatesAcrossPromoteMutateDemote) {
  // The promotion state feeds the kernels a prepared plan snapshots; a
  // mutation that degrades (exception) or demotes (tagged) the column must
  // force a replan, and every stage's results must match the reference.
  MapProvider provider;
  Relation r("R", Schema({Attribute::Make("A", DataType::kInt64, 10),
                          Attribute::Make("B", DataType::kInt64, 10)}));
  for (int64_t i = 0; i < 24; ++i) {
    r.InsertUnchecked(Tuple{Value(i % 8), Value(i)});
  }
  ASSERT_TRUE(provider.Add(r).ok());
  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.B FROM R WHERE R.A >= 4");

  PlanCache cache;
  auto expect_matches_reference = [&]() {
    const auto got = cache.Execute(view, provider);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const auto want = ExecuteViewReference(view, provider, ExecOptions());
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(SetEquals(*got, *want))
        << "cached:\n" << got->ToString() << "reference:\n" << want->ToString();
  };

  // Stage 1: promoted (packed) column.
  auto resolved = provider.Resolve("", "R");
  ASSERT_TRUE(resolved.ok());
  Relation* live = const_cast<Relation*>(resolved.value());
  ASSERT_EQ(live->Segment(0).encoding(), Encoding::kInt64);
  expect_matches_reference();
  EXPECT_EQ(cache.stats().misses, 1);

  // Stage 2: a double lands in the packed column (exception sidecar); the
  // cached plan is stale and must replan, and the 4.5 row passes A >= 4.
  live->InsertUnchecked(Tuple{Value(4.5), Value(static_cast<int64_t>(1000))});
  ASSERT_EQ(live->Segment(0).encoding(), Encoding::kInt64);
  ASSERT_TRUE(live->Segment(0).has_exceptions());
  expect_matches_reference();
  EXPECT_EQ(cache.stats().replans, 1);
  {
    const auto got = cache.Execute(view, provider);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(
        got->ContainsTuple(Tuple{Value(static_cast<int64_t>(1000))}));
  }

  // Stage 3: overflow the sidecar until the column demotes to tagged; the
  // next execution replans again and still matches the reference.
  int64_t extra = 0;
  while (live->Segment(0).encoding() == Encoding::kInt64) {
    live->InsertUnchecked(
        Tuple{Value(5.5), Value(static_cast<int64_t>(2000 + extra))});
    ASSERT_LT(++extra, 100) << "demotion never happened";
  }
  EXPECT_EQ(live->Segment(0).encoding(), Encoding::kTagged);
  expect_matches_reference();
  EXPECT_GE(cache.stats().replans, 2);
}

}  // namespace
}  // namespace eve
