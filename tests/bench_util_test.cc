// Tests of the experiment-harness utilities: Table-2 distribution
// enumeration, grouping, table/series rendering, and the uniform cost-input
// builders.

#include <gtest/gtest.h>

#include "bench_util/bench_json.h"
#include "bench_util/distributions.h"
#include "bench_util/experiment_common.h"
#include "bench_util/table_printer.h"

namespace eve {
namespace {

TEST(Distributions, MatchesPaperTable2) {
  // n = 6 relations over m sites: 1, 5, 10, 10, 5, 1 compositions.
  const int expected[] = {1, 5, 10, 10, 5, 1};
  for (int m = 1; m <= 6; ++m) {
    EXPECT_EQ(Compositions(6, m).size(), static_cast<size_t>(expected[m - 1]))
        << "m=" << m;
  }
  // Row 2 of Table 2 verbatim.
  const auto two = Compositions(6, 2);
  ASSERT_EQ(two.size(), 5u);
  EXPECT_EQ(two[0], (std::vector<int>{1, 5}));
  EXPECT_EQ(two[4], (std::vector<int>{5, 1}));
}

TEST(Distributions, EdgeCases) {
  EXPECT_TRUE(Compositions(3, 4).empty());   // More parts than items.
  EXPECT_TRUE(Compositions(5, 0).empty());
  EXPECT_EQ(Compositions(1, 1).size(), 1u);
  EXPECT_EQ(DistributionLabel({1, 2, 3}), "(1,2,3)");
}

TEST(Distributions, GroupingMergesMirrors) {
  const auto groups = GroupedCompositions(6, 2);
  ASSERT_EQ(groups.size(), 3u);  // 1/5, 2/4, 3/3.
  EXPECT_EQ(groups[0].label, "1/5");
  EXPECT_EQ(groups[0].members.size(), 2u);  // (1,5) and (5,1).
  EXPECT_EQ(groups[2].label, "3/3");
  EXPECT_EQ(groups[2].members.size(), 1u);
  // Total members across groups = all compositions.
  size_t total = 0;
  for (const auto& g : groups) total += g.members.size();
  EXPECT_EQ(total, 5u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long-header"});
  table.AddRow({"xxxxx", "1"});
  table.AddRow({"y", "22"});
  const std::string out = table.Render();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxxx"), std::string::npos);
}

TEST(SeriesRenderer, ScalesBars) {
  const std::string out =
      RenderSeries("title", {"a", "b"}, {1.0, 2.0}, /*bar_width=*/10);
  // The larger value gets the full bar width.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(SeriesRenderer, HandlesAllZeros) {
  const std::string out = RenderSeries("t", {"a"}, {0.0});
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(UniformInput, PlacesRelationsSiteMajor) {
  const ViewCostInput input = MakeUniformInput({2, 4}, UniformParams{});
  ASSERT_EQ(input.relations.size(), 6u);
  EXPECT_EQ(input.relations[0].id.site, "IS1");
  EXPECT_EQ(input.relations[1].id.site, "IS1");
  EXPECT_EQ(input.relations[2].id.site, "IS2");
  EXPECT_EQ(input.relations[5].id.site, "IS2");
  EXPECT_EQ(input.SiteCount(), 2);
  EXPECT_DOUBLE_EQ(input.join_selectivity, 0.005);
}

TEST(BenchJson, RendersRecordsAndEscapes) {
  std::vector<BenchRecord> records;
  records.push_back(BenchRecord{"BM_Foo/256", 1234.5, 100, 4});
  records.push_back(BenchRecord{"BM_\"quoted\"", 2.0, 7});
  const std::string json = BenchRecordsToJson(records);
  EXPECT_NE(json.find("\"name\": \"BM_Foo/256\""), std::string::npos);
  EXPECT_NE(json.find("\"ns_per_op\": 1234.500"), std::string::npos);
  EXPECT_NE(json.find("\"iterations\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 1"), std::string::npos);
  EXPECT_NE(json.find("BM_\\\"quoted\\\""), std::string::npos);
  // The two records are separated by exactly one comma line.
  EXPECT_NE(json.find("},"), std::string::npos);
}

TEST(BenchJson, EmptyRecordListIsValid) {
  const std::string json = BenchRecordsToJson({});
  EXPECT_EQ(json, "{\n  \"benchmarks\": [\n  ]\n}\n");
}

TEST(UniformInput, FirstSiteAveraging) {
  // (1,5): the single first-site relation is the only origin.
  const UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  const auto first =
      FirstSiteUpdateCost(MakeUniformInput({1, 5}, params), options);
  const auto direct =
      SingleUpdateCost(MakeUniformInput({1, 5}, params), 0, options);
  ASSERT_TRUE(first.ok() && direct.ok());
  EXPECT_DOUBLE_EQ(first->bytes, direct->bytes);
  EXPECT_DOUBLE_EQ(first->messages, direct->messages);
}

}  // namespace
}  // namespace eve
