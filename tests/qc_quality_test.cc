// Tests of the quality model (paper §5): interface divergence (Example 3),
// extent divergence for subset/superset/equivalent replacements
// (Experiment 4's DD column), and agreement between the estimated and the
// measured quality on engineered data.

#include <gtest/gtest.h>

#include "esql/parser.h"
#include "qc/quality.h"
#include "storage/generator.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

// Example 1/3 of the paper: V selects A (indispensable), B, C (dispensable,
// replaceable); V1 keeps A, B; V2 keeps only A.  With w1 = 0.7:
// DD_attr(V1) = 0.5, DD_attr(V2) = 1.
TEST(InterfaceQuality, PaperExample3) {
  const ViewDefinition v = Parse(
      "CREATE VIEW V AS SELECT R.A, R.B (AD=true, AR=true), "
      "R.C (AD=true, AR=true) FROM R WHERE R.A > 10 (CD=true)");
  QcParameters params;
  EXPECT_DOUBLE_EQ(InterfaceQuality(v, params), 2 * 0.7);

  Rewriting v1;
  v1.definition = Parse(
      "CREATE VIEW V AS SELECT R.A, R.B (AD=true, AR=true) FROM R "
      "WHERE R.A > 10 (CD=true)");
  v1.extent_relation = ExtentRel::kEqual;
  Rewriting v2;
  v2.definition = Parse("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 10 (CD=true)");
  v2.extent_relation = ExtentRel::kEqual;

  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(
                     RelationId{"IS1", "R"},
                     Schema({Attribute::Make("A", DataType::kInt64),
                             Attribute::Make("B", DataType::kInt64),
                             Attribute::Make("C", DataType::kInt64)}),
                     100)
                  .ok());

  const auto q1 = EstimateQuality(v, v1, mkb, params);
  const auto q2 = EstimateQuality(v, v2, mkb, params);
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_DOUBLE_EQ(q1->dd_attr, 0.5);
  EXPECT_DOUBLE_EQ(q2->dd_attr, 1.0);
  EXPECT_LT(q1->dd, q2->dd);  // V1 preferred over V2 (paper: V1 >IP V2).
}

TEST(InterfaceQuality, AllIndispensableGivesZeroDivergence) {
  const ViewDefinition v = Parse("CREATE VIEW V AS SELECT R.A, R.B FROM R");
  QcParameters params;
  EXPECT_DOUBLE_EQ(InterfaceQuality(v, params), 0.0);
  Rewriting same;
  same.definition = v;
  same.extent_relation = ExtentRel::kEqual;
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(
                     RelationId{"IS1", "R"},
                     Schema({Attribute::Make("A", DataType::kInt64),
                             Attribute::Make("B", DataType::kInt64)}),
                     50)
                  .ok());
  const auto q = EstimateQuality(v, same, mkb, params);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->dd_attr, 0.0);
  EXPECT_DOUBLE_EQ(q->dd, 0.0);
}

TEST(InterfaceQuality, CategoryWeights) {
  // One C1 attribute (w1) and one C2 attribute (w2) dispensable; dropping
  // the C2 attribute costs w2 / (w1 + w2).
  const ViewDefinition v = Parse(
      "CREATE VIEW V AS SELECT R.A, R.B (AD=true, AR=true), R.C (AD=true) "
      "FROM R");
  Rewriting keep_b;
  keep_b.definition =
      Parse("CREATE VIEW V AS SELECT R.A, R.B (AD=true, AR=true) FROM R");
  keep_b.extent_relation = ExtentRel::kEqual;
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(
                     RelationId{"IS1", "R"},
                     Schema({Attribute::Make("A", DataType::kInt64),
                             Attribute::Make("B", DataType::kInt64),
                             Attribute::Make("C", DataType::kInt64)}),
                     100)
                  .ok());
  QcParameters params;
  const auto q = EstimateQuality(v, keep_b, mkb, params);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q->dd_attr, 0.3 / (0.7 + 0.3), 1e-12);
}

// Experiment 4's DD_ext values via the estimation path: an MKB holding the
// containment chain S1 c S2 c S3 = R2 c S4 c S5 with cardinalities
// 2000..6000 yields DD_ext = 0.25, 0.125, 0, 0.10, 0.1667 for the five
// replacements (rho_d1 = rho_d2 = 0.5).
class Exp4QualityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Schema abc({Attribute::Make("A", DataType::kInt64, 34),
                      Attribute::Make("B", DataType::kInt64, 33),
                      Attribute::Make("C", DataType::kInt64, 33)});
    const Schema r1_schema({Attribute::Make("K", DataType::kInt64, 100)});
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS0", "R1"},
                                               r1_schema, 400, 0.5)
                    .ok());
    ASSERT_TRUE(
        mkb_.RegisterRelationWithStats(RelationId{"IS1", "R2"}, abc, 4000, 0.5)
            .ok());
    const int64_t cards[] = {2000, 3000, 4000, 5000, 6000};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(mkb_.RegisterRelationWithStats(
                          RelationId{StrId(i), RelName(i)}, abc, cards[i], 0.5)
                      .ok());
    }
    // The containment chain, declared pairwise as in the paper.
    auto pc = [&](RelationId a, RelationId b, PcRelationType t) {
      ASSERT_TRUE(
          mkb_.AddPcConstraint(MakeProjectionPc(a, b, {"A", "B", "C"}, t)).ok());
    };
    pc(RelationId{"IS2", "S1"}, RelationId{"IS3", "S2"}, PcRelationType::kSubset);
    pc(RelationId{"IS3", "S2"}, RelationId{"IS4", "S3"}, PcRelationType::kSubset);
    pc(RelationId{"IS4", "S3"}, RelationId{"IS1", "R2"},
       PcRelationType::kEquivalent);
    pc(RelationId{"IS4", "S3"}, RelationId{"IS5", "S4"}, PcRelationType::kSubset);
    pc(RelationId{"IS5", "S4"}, RelationId{"IS6", "S5"}, PcRelationType::kSubset);
    mkb_.stats().set_join_selectivity(0.005);

    view_ = Parse(
        "CREATE VIEW V AS SELECT R2.A (AR=true), R2.B (AR=true), "
        "R2.C (AR=true) FROM R1, R2 (RR=true) "
        "WHERE (R1.K = R2.A) (CR=true) AND (R2.B > 5) (CR=true)");
  }

  static std::string StrId(int i) {
    return "IS" + std::to_string(i + 2);
  }
  static std::string RelName(int i) { return "S" + std::to_string(i + 1); }

  MetaKnowledgeBase mkb_;
  ViewDefinition view_;
};

TEST_F(Exp4QualityTest, FiveReplacementsWithPaperDivergences) {
  ViewSynchronizer synchronizer(mkb_);
  const auto sync = synchronizer.Synchronize(
      view_, SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}));
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  ASSERT_TRUE(sync->affected);

  // Expected DD_ext per replacement relation.
  const std::map<std::string, double> expected = {
      {"S1", 0.25},         {"S2", 0.125},        {"S3", 0.0},
      {"S4", 0.5 * 0.2},    {"S5", 0.5 * (1.0 / 3.0)},
  };
  QcParameters params;
  std::map<std::string, double> actual;
  for (const Rewriting& rw : sync->rewritings) {
    if (rw.replacements.size() != 1) continue;
    const auto q = EstimateQuality(view_, rw, mkb_, params);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    actual[rw.replacements[0].replacement.relation] = q->dd_ext;
    EXPECT_DOUBLE_EQ(q->dd_attr, 0.0);  // All attributes preserved.
  }
  ASSERT_EQ(actual.size(), 5u) << "expected replacements by S1..S5";
  for (const auto& [name, dd_ext] : expected) {
    ASSERT_TRUE(actual.count(name)) << name;
    EXPECT_NEAR(actual[name], dd_ext, 1e-9) << name;
  }
}

// Estimated vs measured extent divergence on engineered data: generate a
// containment pair R c S with exact PC constraint, build views over them,
// and check that the estimator's DD_ext matches the measured one.
TEST(QualityAgreement, EstimateMatchesMeasureOnContainmentChain) {
  Random rng(42);
  GeneratorOptions gen;
  gen.num_attributes = 2;
  gen.attribute_bytes = 50;
  gen.key_domain = 1000000;  // Effectively unique tuples.
  gen.value_domain = 1000000;
  const auto chain =
      GenerateContainmentChain({"R", "S"}, {300, 500}, gen, &rng);
  ASSERT_TRUE(chain.ok());

  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                            chain.value()[0].schema(), 300)
                  .ok());
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS2", "S"},
                                            chain.value()[1].schema(), 500)
                  .ok());
  ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                   RelationId{"IS2", "S"},
                                                   {"A", "B"},
                                                   PcRelationType::kSubset))
                  .ok());

  const ViewDefinition original =
      Parse("CREATE VIEW V AS SELECT R.A (AR=true), R.B (AR=true) "
            "FROM R (RR=true)");
  ViewSynchronizer synchronizer(mkb);
  const auto sync = synchronizer.Synchronize(
      original, SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(sync.ok());
  ASSERT_FALSE(sync->rewritings.empty());
  const Rewriting* replacement = nullptr;
  for (const Rewriting& rw : sync->rewritings) {
    if (!rw.replacements.empty()) replacement = &rw;
  }
  ASSERT_NE(replacement, nullptr);

  QcParameters params;
  const auto estimated = EstimateQuality(original, *replacement, mkb, params);
  ASSERT_TRUE(estimated.ok());

  // Measured: old extent = R, new extent = S (both projected to (A, B)).
  Relation old_extent = chain.value()[0];
  Relation new_extent = chain.value()[1];
  const auto measured = MeasureQuality(original, *replacement, old_extent,
                                       new_extent, params);
  ASSERT_TRUE(measured.ok());
  EXPECT_NEAR(estimated->dd_ext_d1, measured->dd_ext_d1, 1e-9);
  EXPECT_NEAR(estimated->dd_ext_d2, measured->dd_ext_d2, 1e-9);
  EXPECT_NEAR(estimated->dd, measured->dd, 1e-9);
}

TEST(QualityBounds, DivergenceAlwaysInUnitInterval) {
  // Parameterized sweep over extent relations and sizes.
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(
                     RelationId{"IS1", "R"},
                     Schema({Attribute::Make("A", DataType::kInt64)}), 100)
                  .ok());
  ASSERT_TRUE(mkb.RegisterRelationWithStats(
                     RelationId{"IS2", "S"},
                     Schema({Attribute::Make("A", DataType::kInt64)}), 700)
                  .ok());
  ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                   RelationId{"IS2", "S"}, {"A"},
                                                   PcRelationType::kSubset))
                  .ok());
  const ViewDefinition v =
      Parse("CREATE VIEW V AS SELECT R.A (AD=true, AR=true) FROM R (RR=true)");
  ViewSynchronizer synchronizer(mkb);
  const auto sync = synchronizer.Synchronize(
      v, SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(sync.ok());
  QcParameters params;
  for (const Rewriting& rw : sync->rewritings) {
    const auto q = EstimateQuality(v, rw, mkb, params);
    ASSERT_TRUE(q.ok());
    for (double value : {q->dd_attr, q->dd_ext_d1, q->dd_ext_d2, q->dd_ext, q->dd}) {
      EXPECT_GE(value, 0.0);
      EXPECT_LE(value, 1.0);
    }
  }
}

}  // namespace
}  // namespace eve
