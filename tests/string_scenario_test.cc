// End-to-end scenario over STRING-typed data: the paper's Asia-Customer
// view with real string names and destinations, exercising typed literals
// through the parser, executor, synchronizer, maintenance, and the facade.

#include <gtest/gtest.h>

#include "eve/eve_system.h"

namespace eve {
namespace {

Relation MakeCustomer() {
  Relation rel("Customer",
               Schema({Attribute::Make("Name", DataType::kString, 20),
                       Attribute::Make("Address", DataType::kString, 40)}));
  for (const auto& [name, addr] :
       std::vector<std::pair<const char*, const char*>>{
           {"ana", "12 Oak St"},
           {"bob", "5 Elm St"},
           {"carla", "9 Pine Rd"},
           {"dmitri", "2 Birch Ave"}}) {
    rel.InsertUnchecked(Tuple{Value(name), Value(addr)});
  }
  return rel;
}

Relation MakeFlightRes() {
  Relation rel("FlightRes",
               Schema({Attribute::Make("PName", DataType::kString, 20),
                       Attribute::Make("Dest", DataType::kString, 10)}));
  for (const auto& [name, dest] :
       std::vector<std::pair<const char*, const char*>>{{"ana", "Asia"},
                                                        {"bob", "Europe"},
                                                        {"carla", "Asia"},
                                                        {"eve", "Asia"}}) {
    rel.InsertUnchecked(Tuple{Value(name), Value(dest)});
  }
  return rel;
}

Relation MakeArchive() {
  Relation rel("CustomerArchive",
               Schema({Attribute::Make("Name", DataType::kString, 20),
                       Attribute::Make("Address", DataType::kString, 40)}));
  for (const auto& [name, addr] :
       std::vector<std::pair<const char*, const char*>>{
           {"ana", "12 Oak St"},
           {"bob", "5 Elm St"},
           {"carla", "9 Pine Rd"},
           {"dmitri", "2 Birch Ave"},
           {"frank", "77 Cedar Ct"}}) {
    rel.InsertUnchecked(Tuple{Value(name), Value(addr)});
  }
  return rel;
}

class StringScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(eve_.RegisterRelation("Agency", MakeCustomer(), 1.0).ok());
    ASSERT_TRUE(eve_.RegisterRelation("Airline", MakeFlightRes(), 0.5).ok());
    ASSERT_TRUE(eve_.RegisterRelation("Archive", MakeArchive(), 1.0).ok());
    ASSERT_TRUE(eve_.AddPcConstraint(MakeProjectionPc(
                        RelationId{"Agency", "Customer"},
                        RelationId{"Archive", "CustomerArchive"},
                        {"Name", "Address"}, PcRelationType::kSubset))
                    .ok());
    ASSERT_TRUE(eve_.DefineView(
                        "CREATE VIEW AsiaCustomer AS "
                        "SELECT C.Name (AR=true), C.Address (AD=true, AR=true) "
                        "FROM Customer C (RR=true), FlightRes F "
                        "WHERE (C.Name = F.PName) (CR=true) "
                        "AND (F.Dest = 'Asia') (CD=true)")
                    .ok());
  }
  EveSystem eve_;
};

TEST_F(StringScenarioTest, StringLiteralsFilterCorrectly) {
  const auto extent = eve_.GetViewExtent("AsiaCustomer");
  ASSERT_TRUE(extent.ok()) << extent.status().ToString();
  EXPECT_EQ(extent->cardinality(), 2);  // ana, carla.
  EXPECT_TRUE(
      extent->ContainsTuple(Tuple{Value("ana"), Value("12 Oak St")}));
  EXPECT_TRUE(
      extent->ContainsTuple(Tuple{Value("carla"), Value("9 Pine Rd")}));
}

TEST_F(StringScenarioTest, ReplacementPreservesStringSemantics) {
  const auto report = eve_.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"Agency", "Customer"}}));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->views.size(), 1u);
  EXPECT_EQ(report->views[0].resulting_state, ViewState::kAlive);

  const auto extent = eve_.GetViewExtent("AsiaCustomer");
  ASSERT_TRUE(extent.ok());
  // The archive adds "frank" but he has no Asia reservation: same extent.
  EXPECT_EQ(extent->cardinality(), 2);
  EXPECT_TRUE(extent->ContainsTuple(Tuple{Value("ana"), Value("12 Oak St")}));
}

TEST_F(StringScenarioTest, StringInsertMaintainsView) {
  const auto counters = eve_.NotifyDataUpdate(
      DataUpdate{UpdateKind::kInsert, RelationId{"Airline", "FlightRes"},
                 Tuple{Value("dmitri"), Value("Asia")}});
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  EXPECT_EQ(counters->tuples_added, 1);
  const auto extent = eve_.GetViewExtent("AsiaCustomer");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->cardinality(), 3);
  EXPECT_TRUE(
      extent->ContainsTuple(Tuple{Value("dmitri"), Value("2 Birch Ave")}));
}

TEST_F(StringScenarioTest, NonAsiaInsertIgnored) {
  const auto counters = eve_.NotifyDataUpdate(
      DataUpdate{UpdateKind::kInsert, RelationId{"Airline", "FlightRes"},
                 Tuple{Value("dmitri"), Value("Europe")}});
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tuples_added, 0);
  EXPECT_EQ(eve_.GetViewExtent("AsiaCustomer")->cardinality(), 2);
}

TEST_F(StringScenarioTest, DeleteReservationRemovesCustomer) {
  const auto counters = eve_.NotifyDataUpdate(
      DataUpdate{UpdateKind::kDelete, RelationId{"Airline", "FlightRes"},
                 Tuple{Value("ana"), Value("Asia")}});
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->tuples_removed, 1);
  const auto extent = eve_.GetViewExtent("AsiaCustomer");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->cardinality(), 1);
  EXPECT_FALSE(extent->ContainsTuple(Tuple{Value("ana"), Value("12 Oak St")}));
}

}  // namespace
}  // namespace eve
