// Serving-layer suite: epoch snapshot publication (serve/snapshot.h) and
// the concurrent front end (serve/frontend.h).
//
// The centerpiece is the snapshot-isolation stress: reader threads pin an
// epoch and execute prepared plans through a shared PlanCache while a
// mutator interleaves inserts, batched deletes, and schema changes.  Every
// result must be byte-identical to the reference executor run on the SAME
// pinned epoch -- any cross-epoch read (a reader observing data or a view
// definition from a different epoch than it pinned) breaks the equality.
// Run under TSan by the sanitizer CI job (ctest -L chaos).
//
// The chaos walks cover the three serving fault sites (serve.admit,
// serve.execute, eve.snapshot_swap): an injected fault surfaces as a clean
// error (or a served stale epoch, for the swap site), no torn state
// survives, and disarming restores byte-identical behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algebra/executor.h"
#include "common/fault_injection.h"
#include "esql/parser.h"
#include "eve/eve_system.h"
#include "serve/frontend.h"
#include "serve/snapshot.h"
#include "space/data_update.h"
#include "space/schema_change.h"

namespace eve {
namespace {

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<int>>& rows) {
  std::vector<Attribute> schema;
  for (const std::string& a : attrs) {
    schema.push_back(Attribute::Make(a, DataType::kInt64, 10));
  }
  Relation rel(name, Schema(std::move(schema)));
  for (const auto& row : rows) {
    Tuple t;
    for (int v : row) t.Append(Value(static_cast<int64_t>(v)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

std::vector<Tuple> SortedTuples(const Relation& rel) {
  std::vector<Tuple> tuples = rel.CopyTuples();
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

Tuple Row(std::vector<int> values) {
  Tuple t;
  for (int v : values) t.Append(Value(static_cast<int64_t>(v)));
  return t;
}

// Every test leaves the process-wide fault registry clean.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Instance().Reset(); }
  void TearDown() override {
    EXPECT_TRUE(FaultInjection::Instance().ArmedSites().empty());
    FaultInjection::Instance().Reset();
  }
};

// A small two-relation world with one alive join view.
std::unique_ptr<EveSystem> MakeWorld() {
  auto system = std::make_unique<EveSystem>();
  EXPECT_TRUE(
      system
          ->RegisterRelation("IS1", MakeRelation("R", {"K", "X"},
                                                 {{1, 10}, {2, 20}, {3, 30}}))
          .ok());
  EXPECT_TRUE(
      system
          ->RegisterRelation("IS1", MakeRelation("S", {"K", "Y"},
                                                 {{1, 100}, {2, 200}, {4, 400}}))
          .ok());
  EXPECT_TRUE(system
                  ->DefineView("CREATE VIEW V AS SELECT R.K, R.X, S.Y "
                               "FROM R, S WHERE R.K = S.K")
                  .ok());
  return system;
}

// --- Snapshot publication ------------------------------------------------------

TEST_F(ServeTest, SnapshotIsImmutableUnderSourceMutation) {
  auto system = MakeWorld();
  const std::shared_ptr<const SystemSnapshot> snap =
      system->snapshots().Current();
  ASSERT_NE(snap, nullptr);
  const uint64_t epoch_before = snap->epoch();

  auto resolved = snap->Resolve("IS1", "R");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value()->cardinality(), 3);

  // Mutating the live system neither changes the pinned snapshot's data
  // nor its epoch; the publisher moves on to a fresh one.
  ASSERT_TRUE(system
                  ->NotifyDataUpdate(DataUpdate{UpdateKind::kInsert,
                                                RelationId{"IS1", "R"},
                                                Row({4, 40})})
                  .ok());
  EXPECT_EQ(resolved.value()->cardinality(), 3);
  EXPECT_EQ(snap->epoch(), epoch_before);
  const auto fresh = system->snapshots().Current();
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh->epoch(), epoch_before);
  EXPECT_GT(fresh->sequence(), snap->sequence());
  auto fresh_r = fresh->Resolve("", "R");
  ASSERT_TRUE(fresh_r.ok());
  EXPECT_EQ(fresh_r.value()->cardinality(), 4);
}

TEST_F(ServeTest, SnapshotViewResolutionPinsTheOldDefinition) {
  auto system = MakeWorld();
  const auto old_epoch = system->snapshots().Current();
  ASSERT_NE(old_epoch, nullptr);

  // Rename R.X; the evolution rewrites V in place.
  ASSERT_TRUE(system
                  ->NotifySchemaChange(SchemaChange(RenameAttribute{
                      RelationId{"IS1", "R"}, "X", "X2"}))
                  .ok());

  const auto old_def = old_epoch->View("V");
  ASSERT_TRUE(old_def.ok());
  const auto old_result =
      ExecuteViewReference(old_def.value(), *old_epoch, ExecOptions{});
  ASSERT_TRUE(old_result.ok()) << old_result.status().ToString();
  EXPECT_EQ(old_result->cardinality(), 2);

  const auto new_epoch = system->snapshots().Current();
  ASSERT_NE(new_epoch, nullptr);
  const auto new_def = new_epoch->View("V");
  ASSERT_TRUE(new_def.ok());
  const auto new_result =
      ExecuteViewReference(new_def.value(), *new_epoch, ExecOptions{});
  ASSERT_TRUE(new_result.ok()) << new_result.status().ToString();
  EXPECT_EQ(SortedTuples(*new_result), SortedTuples(*old_result));
}

// --- Front-end basics ----------------------------------------------------------

TEST_F(ServeTest, ServesAdHocAndNamedQueriesMatchingReference) {
  auto system = MakeWorld();
  ServingFrontEnd fe(*system);

  const auto snap = system->snapshots().Current();
  ASSERT_NE(snap, nullptr);
  const auto view_def = snap->View("V");
  ASSERT_TRUE(view_def.ok());
  const auto reference =
      ExecuteViewReference(view_def.value(), *snap, ExecOptions{});
  ASSERT_TRUE(reference.ok());

  ServeResult named = fe.QueryView("V");
  ASSERT_TRUE(named.status.ok()) << named.status.ToString();
  EXPECT_EQ(named.epoch, snap->epoch());
  EXPECT_EQ(named.attempts, 1);
  EXPECT_EQ(SortedTuples(named.relation), SortedTuples(*reference));

  ServeResult adhoc =
      fe.Query("CREATE VIEW Q AS SELECT R.X FROM R WHERE R.K >= 2");
  ASSERT_TRUE(adhoc.status.ok()) << adhoc.status.ToString();
  EXPECT_EQ(adhoc.relation.cardinality(), 2);

  ServeResult missing = fe.QueryView("NoSuchView");
  EXPECT_FALSE(missing.status.ok());

  const ServingStats stats = fe.stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.shed, 0);

  // Repeat queries of the same view on the same epoch hit the plan
  // cache's snapshot fast path.
  ASSERT_TRUE(fe.QueryView("V").status.ok());
  EXPECT_GE(fe.plan_cache().stats().snapshot_hits, 1);
}

TEST_F(ServeTest, ShutdownShedsNewRequestsAndDrainsAdmitted) {
  auto system = MakeWorld();
  ServingFrontEnd fe(*system);
  ASSERT_TRUE(fe.QueryView("V").status.ok());
  fe.Shutdown();
  const ServeResult shed = fe.QueryView("V");
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(shed.retry_after.count(), 0);
  EXPECT_EQ(fe.stats().shed, 1);
  fe.Shutdown();  // Idempotent.
}

TEST_F(ServeTest, OverloadShedsPastHighWaterAndEveryFutureResolves) {
  auto system = MakeWorld();
  ServingOptions options;
  options.workers = 1;
  options.queue_capacity = 2;  // high_water = max(1, 2*3/4) = 1.
  ServingFrontEnd fe(*system, options);

  constexpr int kRequests = 300;
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(fe.SubmitView("V"));
  }
  int ok = 0;
  int unavailable = 0;
  for (auto& f : futures) {
    const ServeResult r = f.get();
    if (r.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kUnavailable)
          << r.status.ToString();
      EXPECT_GT(r.retry_after.count(), 0);
      ++unavailable;
    }
  }
  EXPECT_EQ(ok + unavailable, kRequests);
  const ServingStats stats = fe.stats();
  EXPECT_EQ(stats.admitted + stats.shed, kRequests);
  EXPECT_EQ(stats.completed, ok);
  // One worker against a tight submission loop: shedding must kick in.
  EXPECT_GT(stats.shed, 0);
}

// --- Fault sites ---------------------------------------------------------------

TEST_F(ServeTest, AdmitFaultShedsWithInjectedCode) {
  auto system = MakeWorld();
  ServingFrontEnd fe(*system);
  FaultInjection& fi = FaultInjection::Instance();
  ASSERT_TRUE(fi.ArmFromString("serve.admit=0+1:unavailable").ok());
  const ServeResult shed = fe.QueryView("V");
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.attempts, 0);
  EXPECT_EQ(fe.stats().shed, 1);
  EXPECT_EQ(fi.FiredCount("serve.admit"), 1);
  fi.Disarm("serve.admit");
  // Disarmed: byte-identical recovery.
  const ServeResult ok = fe.QueryView("V");
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.relation.cardinality(), 2);
}

TEST_F(ServeTest, InternalExecutionFaultsAreRetriedWithBackoff) {
  auto system = MakeWorld();
  ServingOptions options;
  options.workers = 1;
  options.max_retries = 2;
  options.initial_backoff = std::chrono::microseconds(1);
  options.max_backoff = std::chrono::microseconds(8);
  ServingFrontEnd fe(*system, options);
  FaultInjection& fi = FaultInjection::Instance();

  // First two execution attempts fail with kInternal; the third succeeds.
  ASSERT_TRUE(fi.ArmFromString("serve.execute=0+2").ok());
  const ServeResult recovered = fe.QueryView("V");
  ASSERT_TRUE(recovered.status.ok()) << recovered.status.ToString();
  EXPECT_EQ(recovered.attempts, 3);
  EXPECT_EQ(recovered.relation.cardinality(), 2);
  EXPECT_EQ(fe.stats().retries, 2);
  EXPECT_EQ(fe.stats().completed, 1);
  fi.Disarm("serve.execute");

  // Persistent kInternal exhausts the retry budget and fails.
  ASSERT_TRUE(fi.ArmFromString("serve.execute=0+*").ok());
  const ServeResult exhausted = fe.QueryView("V");
  EXPECT_EQ(exhausted.status.code(), StatusCode::kInternal);
  EXPECT_EQ(exhausted.attempts, 1 + options.max_retries);
  EXPECT_EQ(fe.stats().failed, 1);
  fi.Disarm("serve.execute");

  // kUnavailable is never retried server-side.
  ASSERT_TRUE(fi.ArmFromString("serve.execute=0+1:unavailable").ok());
  const ServeResult unavailable = fe.QueryView("V");
  EXPECT_EQ(unavailable.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.attempts, 1);
  fi.Disarm("serve.execute");
}

TEST_F(ServeTest, SnapshotSwapFaultServesStaleEpochUntilRefresh) {
  auto system = MakeWorld();
  ServingFrontEnd fe(*system);
  FaultInjection& fi = FaultInjection::Instance();

  const auto before = system->snapshots().Current();
  ASSERT_NE(before, nullptr);
  ASSERT_FALSE(system->snapshots().stale());

  // The mutation commits, but its epoch publication fails: readers keep
  // being served the OLD epoch (graceful degradation, not an error).
  ASSERT_TRUE(fi.ArmFromString("eve.snapshot_swap=0+*").ok());
  ASSERT_TRUE(system
                  ->NotifyDataUpdate(DataUpdate{UpdateKind::kInsert,
                                                RelationId{"IS1", "R"},
                                                Row({4, 40})})
                  .ok());
  EXPECT_TRUE(system->snapshots().stale());
  const ServeResult degraded = fe.QueryView("V");
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_EQ(degraded.epoch, before->epoch());
  EXPECT_EQ(degraded.relation.cardinality(), 2);  // Pre-mutation extent.

  // An explicit refresh while the site is still armed keeps failing...
  EXPECT_EQ(system->RefreshSnapshot().code(), StatusCode::kInternal);
  EXPECT_TRUE(system->snapshots().stale());

  // ...and recovers cleanly once disarmed: fresh epoch, new data served.
  fi.Disarm("eve.snapshot_swap");
  ASSERT_TRUE(system->RefreshSnapshot().ok());
  EXPECT_FALSE(system->snapshots().stale());
  const ServeResult fresh = fe.QueryView("V");
  ASSERT_TRUE(fresh.status.ok()) << fresh.status.ToString();
  EXPECT_NE(fresh.epoch, before->epoch());
  // The committed row (4, 40) joins S's K=4 row in the fresh epoch.
  EXPECT_EQ(fresh.relation.cardinality(), 3);
  const auto adhoc = fe.Query("CREATE VIEW Q AS SELECT R.K, R.X FROM R");
  ASSERT_TRUE(adhoc.status.ok());
  EXPECT_EQ(adhoc.relation.cardinality(), 4);
}

// --- Snapshot-isolation stress (TSan target) -----------------------------------

TEST_F(ServeTest, ConcurrentReadersSeeByteIdenticalPinnedEpochs) {
  auto system = MakeWorld();
  ServingFrontEnd fe(*system);
  PlanCache shared_cache;

  constexpr int kReaders = 8;
  constexpr int kReadsPerReader = 25;
  constexpr int kFrontEndReaders = 2;
  constexpr int kFrontEndReads = 15;

  std::atomic<bool> readers_done{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> reads_ok{0};

  // Readers: pin an epoch, execute the pinned view definition through the
  // shared PlanCache, and demand byte-identical output from the reference
  // executor on the SAME epoch.  A reader observing any state from a
  // different epoch (relation data, view definition, or a plan validated
  // against other storage) breaks the equality.
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        const std::shared_ptr<const SystemSnapshot> snap =
            system->snapshots().Current();
        if (snap == nullptr) continue;
        const auto def = snap->View("V");
        if (!def.ok()) {
          ++mismatches;  // V stays alive through every mutation below.
          continue;
        }
        const auto prepared =
            shared_cache.Execute(def.value(), *snap, ExecOptions{});
        const auto reference =
            ExecuteViewReference(def.value(), *snap, ExecOptions{});
        if (!prepared.ok() || !reference.ok()) {
          ++mismatches;
          continue;
        }
        if (SortedTuples(*prepared) != SortedTuples(*reference) ||
            prepared->schema().ToString() != reference->schema().ToString()) {
          ++mismatches;
        } else {
          ++reads_ok;
        }
      }
    });
  }

  // Front-end readers ride the full admission/worker path concurrently;
  // kUnavailable (shed or watchdog) is acceptable, anything else is not.
  std::vector<std::thread> fe_readers;
  fe_readers.reserve(kFrontEndReaders);
  std::atomic<int> fe_errors{0};
  for (int t = 0; t < kFrontEndReaders; ++t) {
    fe_readers.emplace_back([&] {
      for (int i = 0; i < kFrontEndReads; ++i) {
        const ServeResult r = fe.QueryView("V");
        if (r.status.ok()) {
          if (r.epoch == 0 || r.relation.schema().size() != 3) ++fe_errors;
        } else if (r.status.code() != StatusCode::kUnavailable) {
          ++fe_errors;
        }
      }
    });
  }

  // Mutator: inserts, batched deletes, and schema renames, each publishing
  // a fresh epoch.  Runs until every reader finished.
  std::thread mutator([&] {
    int i = 0;
    bool renamed = false;
    while ((!readers_done.load(std::memory_order_acquire) || i < 10) &&
           i < 4000) {
      ++i;
      const int k = 5 + (i % 50);
      ASSERT_TRUE(system
                      ->NotifyDataUpdate(DataUpdate{UpdateKind::kInsert,
                                                    RelationId{"IS1", "R"},
                                                    Row({k, k * 10})})
                      .ok());
      if (i % 3 == 0) {
        ASSERT_TRUE(system
                        ->NotifyDataUpdate(DataUpdate{UpdateKind::kDelete,
                                                      RelationId{"IS1", "R"},
                                                      Row({k, k * 10})})
                        .ok());
      }
      if (i % 7 == 0) {
        const auto report = system->NotifySchemaChange(
            SchemaChange(RenameAttribute{RelationId{"IS1", "R"},
                                         renamed ? "X2" : "X",
                                         renamed ? "X" : "X2"}));
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        renamed = !renamed;
      }
      std::this_thread::yield();
    }
  });

  for (std::thread& r : readers) r.join();
  for (std::thread& r : fe_readers) r.join();
  readers_done.store(true, std::memory_order_release);
  mutator.join();
  fe.Shutdown();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(fe_errors.load(), 0);
  EXPECT_EQ(reads_ok.load(), kReaders * kReadsPerReader);
  // The stress must have actually raced readers against epoch swaps.
  EXPECT_GT(system->snapshots().CurrentSequence(), 1u);
}

}  // namespace
}  // namespace eve
