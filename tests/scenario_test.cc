// Evolution-stream scenario engine (bench_util/scenario.h): generator
// determinism, end-to-end replay, equivalence of the two MKB invalidation
// modes over a full stream, byte-identical parallel vs serial
// ChangeReports, and once-per-change snapshot publication (including the
// SnapshotBatch bulk-load suppression).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_util/scenario.h"

namespace eve {
namespace {

ScenarioOptions SmallScenario() {
  ScenarioOptions options;
  options.families = 3;
  options.replicas_per_family = 4;
  options.churn_relations = 3;
  options.views = 12;
  options.dimension_rows = 64;
  options.fact_rows = 64;
  options.churn_rows = 16;
  return options;
}

std::unique_ptr<EveSystem> BuildSmall(const ScenarioOptions& options,
                                      int threads = 0) {
  EveOptions eve_options;
  eve_options.materialize = false;
  eve_options.synchronize_threads = threads;
  auto system = BuildScenarioSystem(options, eve_options);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

TEST(ScenarioGenerator, DeterministicPerSeed) {
  const ScenarioOptions options = SmallScenario();
  const auto a = GenerateEventStream(options, 300, 7);
  const auto b = GenerateEventStream(options, 300, 7);
  ASSERT_EQ(a.size(), 300u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(), b[i].ToString()) << "event " << i;
  }
  const auto c = GenerateEventStream(options, 300, 8);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].ToString() != c[i].ToString();
  }
  EXPECT_TRUE(differs) << "different seeds must yield different streams";
}

TEST(ScenarioBuild, SpaceShapeAndSingleSnapshot) {
  const ScenarioOptions options = SmallScenario();
  const auto system = BuildSmall(options);
  EXPECT_EQ(system->vkb().ViewNames().size(), 12u);
  for (const std::string& name : system->vkb().ViewNames()) {
    EXPECT_EQ(system->GetViewState(name).value(), ViewState::kAlive);
  }
  // families facts + churn relations + families * replicas dimensions.
  EXPECT_EQ(system->mkb().Relations().size(),
            static_cast<size_t>(3 + 3 + 3 * 4));
  // The whole bulk load publishes exactly ONE epoch (SnapshotBatch) on top
  // of the empty birth epoch the EveSystem constructor publishes.
  ASSERT_NE(system->snapshots().Current(), nullptr);
  EXPECT_EQ(system->snapshots().Current()->sequence(), 2u);
}

TEST(ScenarioReplay, StreamAppliesCleanlyWithWarmMemos) {
  const ScenarioOptions options = SmallScenario();
  const auto system = BuildSmall(options);
  const auto stream = GenerateEventStream(options, 400, options.seed + 1);
  const auto result = ReplayScenario(*system, stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->events_applied, 400);
  EXPECT_EQ(result->schema_changes + result->data_updates + result->relinks,
            400);
  EXPECT_GT(result->schema_changes, 0);
  EXPECT_EQ(result->alive_views + result->dead_views, 12);
  ASSERT_FALSE(result->samples.empty());
  EXPECT_GT(result->samples.back().mean_replaceability, 0.0);
  // Acceptance: most memo entries survive each delta-aware sweep.
  const MkbMemoStats& memo = result->final_memo;
  ASSERT_GT(memo.memo_survivals + memo.selective_drops, 0);
  EXPECT_GT(static_cast<double>(memo.memo_survivals) /
                static_cast<double>(memo.memo_survivals +
                                    memo.selective_drops),
            0.5);
  EXPECT_EQ(memo.full_flushes, 0);
  const std::string csv = result->CurvesCsv();
  EXPECT_NE(csv.find("replaceability"), std::string::npos);
  EXPECT_NE(csv.find("\n399,"), std::string::npos) << "last event sampled";
}

TEST(ScenarioReplay, SelectiveMatchesFullFlushCurves) {
  const ScenarioOptions options = SmallScenario();
  const auto stream = GenerateEventStream(options, 400, options.seed + 1);
  const auto selective = BuildSmall(options);
  const auto full = BuildSmall(options);
  full->mkb().set_selective_invalidation(false);
  const auto a = ReplayScenario(*selective, stream);
  const auto b = ReplayScenario(*full, stream);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->alive_views, b->alive_views);
  EXPECT_EQ(a->dead_views, b->dead_views);
  ASSERT_EQ(a->samples.size(), b->samples.size());
  for (size_t i = 0; i < a->samples.size(); ++i) {
    const ReplaySample& sa = a->samples[i];
    const ReplaySample& sb = b->samples[i];
    EXPECT_EQ(sa.kind, sb.kind) << "sample " << i;
    EXPECT_EQ(sa.alive_views, sb.alive_views) << "sample " << i;
    EXPECT_EQ(sa.affected_views, sb.affected_views) << "sample " << i;
    EXPECT_DOUBLE_EQ(sa.mean_adopted_qc, sb.mean_adopted_qc) << "sample " << i;
    EXPECT_DOUBLE_EQ(sa.mean_adopted_cost, sb.mean_adopted_cost)
        << "sample " << i;
    EXPECT_DOUBLE_EQ(sa.mean_replaceability, sb.mean_replaceability)
        << "sample " << i;
  }
  EXPECT_GT(b->final_memo.full_flushes, 0);
}

// The parallel per-view synchronization loop must produce a ChangeReport
// byte-identical to the serial loop's, across thread counts, including a
// change that fans out to every view of a family at once.
TEST(ParallelSynchronization, ReportsByteIdenticalAcrossThreadCounts) {
  ScenarioOptions options = SmallScenario();
  options.families = 1;  // All 12 views reference the one family's chain head.
  const auto stream = GenerateEventStream(options, 200, options.seed + 1);
  std::string serial_log;
  for (int threads : {1, 2, 4}) {
    const auto system = BuildSmall(options, threads);
    std::string log;
    for (const ScenarioEvent& event : stream) {
      const auto* change = std::get_if<SchemaChange>(&event.op);
      if (change == nullptr) continue;
      const auto report = system->NotifySchemaChange(*change);
      ASSERT_TRUE(report.ok()) << event.ToString() << ": "
                               << report.status().ToString();
      log += report->ToString();
      log += '\n';
    }
    if (threads == 1) {
      serial_log = std::move(log);
    } else {
      EXPECT_EQ(log, serial_log) << "threads=" << threads;
    }
  }
}

TEST(SnapshotPublication, OncePerChangeAndBatched) {
  const ScenarioOptions options = SmallScenario();
  const auto system = BuildSmall(options);
  const uint64_t seq0 = system->snapshots().Current()->sequence();

  // One capability change -> exactly one new epoch (audit: steps 4 and 5 of
  // NotifySchemaChange used to publish separately).
  const auto stream = GenerateEventStream(options, 50, options.seed + 1);
  const SchemaChange* change = nullptr;
  const DataUpdate* update = nullptr;
  for (const ScenarioEvent& event : stream) {
    if (change == nullptr) change = std::get_if<SchemaChange>(&event.op);
    if (update == nullptr) {
      const auto* candidate = std::get_if<DataUpdate>(&event.op);
      // Inserts are idempotently applicable; a delete is only valid once.
      if (candidate != nullptr && candidate->kind == UpdateKind::kInsert) {
        update = candidate;
      }
    }
  }
  ASSERT_NE(change, nullptr);
  ASSERT_NE(update, nullptr);
  ASSERT_TRUE(system->NotifySchemaChange(*change).ok());
  EXPECT_EQ(system->snapshots().Current()->sequence(), seq0 + 1);

  // A batch of data updates -> one deferred publish at scope exit.
  {
    EveSystem::SnapshotBatch batch(*system);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(system->NotifyDataUpdate(*update).ok());
    }
    EXPECT_EQ(system->snapshots().Current()->sequence(), seq0 + 1)
        << "publication must be deferred inside the batch";
  }
  EXPECT_EQ(system->snapshots().Current()->sequence(), seq0 + 2);
}

}  // namespace
}  // namespace eve
