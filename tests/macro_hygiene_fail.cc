// Compile-fail corpus for the error-propagation macros, driven by
// -DEVE_MACRO_MISUSE_CASE=<n> from CMake compile-only tests:
//
//   case 0  valid usage              -> MUST compile (guards the harness:
//                                      proves failures come from the
//                                      misuse, not from this file)
//   case 1  EVE_ASSIGN_OR_RETURN as a brace-less if body   -> MUST NOT
//   case 2  EVE_ASSIGN_OR_RETURN as a brace-less loop body -> MUST NOT
//
// The macro declares a scoped temporary, so a brace-less use splits the
// declaration from the assignment that reads it -- an ill-formed program,
// caught at compile time instead of misbehaving at run time.  Cases 1-2
// are registered with WILL_FAIL in CMakeLists.txt.
//
// This file deliberately does not match the tests/*_test.cc glob: it is
// compiled with -fsyntax-only by the macro_hygiene_fail_* ctest entries,
// never linked.

#include "common/result.h"
#include "common/status.h"

#ifndef EVE_MACRO_MISUSE_CASE
#define EVE_MACRO_MISUSE_CASE 0
#endif

namespace eve {

Result<int> Source() { return 1; }

#if EVE_MACRO_MISUSE_CASE == 0

Result<int> ValidUse(bool flag) {
  if (flag) {
    EVE_ASSIGN_OR_RETURN(const int v, Source());
    return v;
  }
  EVE_ASSIGN_OR_RETURN(const int w, Source());
  return w + 1;
}

#elif EVE_MACRO_MISUSE_CASE == 1

Result<int> BracelessIf(bool flag) {
  int v = 0;
  if (flag)
    EVE_ASSIGN_OR_RETURN(v, Source());  // ERROR: needs a block.
  return v;
}

#elif EVE_MACRO_MISUSE_CASE == 2

Result<int> BracelessLoop() {
  int v = 0;
  for (int i = 0; i < 3; ++i)
    EVE_ASSIGN_OR_RETURN(v, Source());  // ERROR: needs a block.
  return v;
}

#else
#error "unknown EVE_MACRO_MISUSE_CASE"
#endif

}  // namespace eve
