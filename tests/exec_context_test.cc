// Resource-governance tests: ExecContext knobs and edge cases, the
// amortized ExecGovernor, governed execution (hard errors), governed
// rewriting enumeration (graceful truncation), the governed MKB closure
// memo, and concurrent cancellation (exercised under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "algebra/executor.h"
#include "common/exec_context.h"
#include "common/parallel.h"
#include "esql/parser.h"
#include "eve/eve_system.h"
#include "maintenance/maintainer.h"
#include "misd/mkb.h"
#include "plan/plan_cache.h"
#include "plan/planner.h"
#include "space/information_space.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<int>>& rows) {
  std::vector<Attribute> schema;
  for (const std::string& a : attrs) {
    schema.push_back(Attribute::Make(a, DataType::kInt64, 10));
  }
  Relation rel(name, Schema(std::move(schema)));
  for (const auto& row : rows) {
    Tuple t;
    for (int v : row) t.Append(Value(static_cast<int64_t>(v)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

// --- ExecContext knobs --------------------------------------------------------

TEST(ExecContext, UnlimitedDefaultNeverFails) {
  const ExecContext& ctx = ExecContext::Unlimited();
  EXPECT_FALSE(ctx.limited());
  EXPECT_TRUE(ctx.CheckNow().ok());
  EXPECT_TRUE(ctx.ConsumeRows(1 << 20).ok());
  EXPECT_TRUE(ctx.ConsumeCandidates(1 << 20).ok());
  EXPECT_TRUE(ctx.ConsumeMemory(int64_t{1} << 40).ok());
  EXPECT_EQ(ctx.RowsRemaining(), ExecContext::kUnlimited);
}

TEST(ExecContext, ZeroRowBudgetFailsImmediately) {
  ExecContext ctx;
  ctx.WithRowBudget(0);
  EXPECT_TRUE(ctx.limited());
  const Status s = ctx.ConsumeRows(1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.RowsRemaining(), 0);
}

TEST(ExecContext, BudgetAccountingAndOvershoot) {
  ExecContext ctx;
  ctx.WithRowBudget(10);
  EXPECT_TRUE(ctx.ConsumeRows(6).ok());
  EXPECT_EQ(ctx.RowsRemaining(), 4);
  EXPECT_TRUE(ctx.ConsumeRows(4).ok());  // Exactly at the budget.
  EXPECT_EQ(ctx.RowsRemaining(), 0);
  EXPECT_EQ(ctx.ConsumeRows(5).code(), StatusCode::kResourceExhausted);
  // Counters keep counting past exhaustion so the overshoot is reported.
  EXPECT_EQ(ctx.rows_used(), 15);
}

TEST(ExecContext, CandidateAndMemoryBudgets) {
  ExecContext ctx;
  ctx.WithCandidateBudget(2).WithMemoryBudget(100);
  EXPECT_TRUE(ctx.ConsumeCandidates(2).ok());
  EXPECT_EQ(ctx.ConsumeCandidates(1).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.ConsumeMemory(100).ok());
  EXPECT_EQ(ctx.ConsumeMemory(1).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContext, ExpiredDeadline) {
  ExecContext ctx;
  ctx.WithDeadline(ExecContext::Clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(ctx.limited());
  EXPECT_EQ(ctx.CheckNow().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContext, FutureDeadlinePasses) {
  ExecContext ctx;
  ctx.WithDeadlineAfter(std::chrono::hours(1));
  EXPECT_TRUE(ctx.limited());
  EXPECT_TRUE(ctx.CheckNow().ok());
}

TEST(ExecContext, CancellationBeatsDeadline) {
  CancelToken token;
  ExecContext ctx;
  // Both tripwires set: cancellation must win (it is the caller's explicit
  // intent; a deadline message would misdiagnose it as slowness).
  ctx.WithDeadline(ExecContext::Clock::now() - std::chrono::seconds(1))
      .WithCancelToken(&token);
  token.Cancel();
  EXPECT_EQ(ctx.CheckNow().code(), StatusCode::kCancelled);
}

TEST(ExecContext, SharedAcrossThreads) {
  ExecContext ctx;
  ctx.WithRowBudget(1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ctx] {
      for (int i = 0; i < 100; ++i) (void)ctx.ConsumeRows(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ctx.rows_used(), 400);
  EXPECT_EQ(ctx.RowsRemaining(), 600);
}

// --- ExecGovernor -------------------------------------------------------------

TEST(ExecGovernor, InactiveOnUnlimitedContext) {
  const ExecContext ctx;  // Default-constructed: no knob set.
  ExecGovernor gov(ctx);
  EXPECT_FALSE(gov.active());
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(gov.Charge().ok());
  EXPECT_TRUE(gov.Flush().ok());
  EXPECT_EQ(ctx.rows_used(), 0) << "inactive governor must not charge";
}

TEST(ExecGovernor, SmallBudgetTripsWithinOneStride) {
  ExecContext ctx;
  ctx.WithRowBudget(10);
  ExecGovernor gov(ctx);
  EXPECT_TRUE(gov.active());
  // The stride tightens to the remaining budget, so the failure surfaces
  // promptly -- not after kCheckStride rows.
  Status s;
  int charged = 0;
  for (; charged < 100 && s.ok(); ++charged) s = gov.Charge();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_LT(charged, 64) << "small budget must not wait for a full stride";
}

TEST(ExecGovernor, FlushChargesTheTail) {
  ExecContext ctx;
  ctx.WithRowBudget(1000000);
  {
    ExecGovernor gov(ctx);
    for (int i = 0; i < 7; ++i) EXPECT_TRUE(gov.Charge().ok());
    EXPECT_TRUE(gov.Flush().ok());
  }
  EXPECT_EQ(ctx.rows_used(), 7);
}

// --- Governed execution: hard errors ------------------------------------------

class GovernedExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::vector<int>> r_rows, s_rows;
    for (int i = 0; i < 64; ++i) {
      r_rows.push_back({i, i * 10});
      s_rows.push_back({i, i * 100});
    }
    ASSERT_TRUE(space_.AddRelation("IS1", MakeRelation("R", {"K", "X"}, r_rows))
                    .ok());
    ASSERT_TRUE(space_.AddRelation("IS2", MakeRelation("S", {"K", "Y"}, s_rows))
                    .ok());
    view_ = Parse("CREATE VIEW V AS SELECT R.X, S.Y FROM R, S WHERE R.K = S.K");
  }

  InformationSpace space_;
  ViewDefinition view_;
};

TEST_F(GovernedExecutionTest, GenerousContextMatchesUngoverned) {
  const auto plain = ExecuteView(view_, space_);
  ASSERT_TRUE(plain.ok());
  ExecContext ctx;
  ctx.WithRowBudget(int64_t{1} << 40).WithDeadlineAfter(std::chrono::hours(1));
  const auto governed = ExecuteView(view_, space_, {}, ctx);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_EQ(governed->ToString(), plain->ToString());
  EXPECT_GT(ctx.rows_used(), 0) << "governed execution must charge rows";
}

TEST_F(GovernedExecutionTest, RowBudgetExhaustionIsHardError) {
  ExecContext ctx;
  ctx.WithRowBudget(4);
  const auto result = ExecuteView(view_, space_, {}, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GovernedExecutionTest, ExpiredDeadlineIsHardError) {
  ExecContext ctx;
  ctx.WithDeadline(ExecContext::Clock::now() - std::chrono::seconds(1));
  const auto result = ExecuteView(view_, space_, {}, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  const auto reference = ExecuteViewReference(view_, space_, {}, ctx);
  ASSERT_FALSE(reference.ok());
  EXPECT_EQ(reference.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(GovernedExecutionTest, CancelledTokenIsHardError) {
  CancelToken token;
  token.Cancel();
  ExecContext ctx;
  ctx.WithCancelToken(&token);
  const auto result = ExecuteView(view_, space_, {}, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// One shared prepared plan, one shared context, four executing threads, a
// cancel raised mid-flight: every thread must come back with OK or
// Cancelled (never a crash or torn Relation).  TSan covers the data-race
// side of this contract in CI.
TEST_F(GovernedExecutionTest, ConcurrentCancellationIsClean) {
  const auto plan = PrepareView(view_, space_);
  ASSERT_TRUE(plan.ok());
  CancelToken token;
  ExecContext ctx;
  ctx.WithCancelToken(&token);
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0}, cancelled_count{0}, other_count{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        const auto result = ExecutePrepared(**plan, ctx);
        if (result.ok()) {
          ++ok_count;
        } else if (result.status().code() == StatusCode::kCancelled) {
          ++cancelled_count;
        } else {
          ++other_count;
        }
      }
    });
  }
  token.Cancel();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_GT(cancelled_count.load(), 0);
}

TEST_F(GovernedExecutionTest, ParallelForStatusStopsOnCancel) {
  CancelToken token;
  token.Cancel();
  ExecContext ctx;
  ctx.WithCancelToken(&token);
  std::atomic<int> bodies_run{0};
  const Status s = ParallelForStatus(
      1000, 4,
      [&](int64_t) -> Status {
        ++bodies_run;
        return Status::OK();
      },
      ctx);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_LT(bodies_run.load(), 1000);
}

TEST_F(GovernedExecutionTest, MaintainerRecomputeHonorsDeadline) {
  ViewMaintainer maintainer(space_);
  ExecContext ctx;
  ctx.WithDeadline(ExecContext::Clock::now() - std::chrono::seconds(1));
  const auto result = maintainer.Recompute(view_, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// --- Governed enumeration: graceful truncation --------------------------------

// Experiment 1's fixture: deleting R.A yields three legal rewritings (keep
// A from S, keep A from T, drop to B) -- enough alternatives for a small
// candidate budget to bite.
class GovernedSynchronizerTest : public ::testing::Test {
 protected:
  static Schema IntSchema(const std::vector<std::string>& names) {
    std::vector<Attribute> attrs;
    for (const std::string& n : names) {
      attrs.push_back(Attribute::Make(n, DataType::kInt64, 50));
    }
    return Schema(std::move(attrs));
  }

  void SetUp() override {
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                               IntSchema({"A", "B"}), 100, 1.0)
                    .ok());
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS2", "S"},
                                               IntSchema({"A", "C"}), 120, 1.0)
                    .ok());
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS3", "T"},
                                               IntSchema({"A", "D"}), 140, 1.0)
                    .ok());
    ASSERT_TRUE(mkb_.AddPcConstraint(
                        MakeProjectionPc(RelationId{"IS1", "R"},
                                         RelationId{"IS2", "S"}, {"A"},
                                         PcRelationType::kSubset))
                    .ok());
    ASSERT_TRUE(mkb_.AddPcConstraint(
                        MakeProjectionPc(RelationId{"IS1", "R"},
                                         RelationId{"IS3", "T"}, {"A"},
                                         PcRelationType::kSubset))
                    .ok());
    view_ = Parse(
        "CREATE VIEW V0 AS SELECT R.A (AD=true, AR=true), R.B (AD=true) "
        "FROM R (RR=true)");
  }

  MetaKnowledgeBase mkb_;
  ViewDefinition view_;
  SchemaChange change_ = DeleteAttribute{RelationId{"IS1", "R"}, "A"};
};

TEST_F(GovernedSynchronizerTest, UnlimitedEnumerationIsNotTruncated) {
  ViewSynchronizer synchronizer(mkb_);
  const auto result = synchronizer.Synchronize(view_, change_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->affected);
  EXPECT_FALSE(result->truncated);
  EXPECT_EQ(result->rewritings.size(), 3u);
}

TEST_F(GovernedSynchronizerTest, CandidateBudgetTruncatesInsteadOfFailing) {
  ViewSynchronizer synchronizer(mkb_);
  ExecContext ctx;
  ctx.WithCandidateBudget(1);
  const auto result = synchronizer.Synchronize(view_, change_, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->affected);
  EXPECT_TRUE(result->truncated);
  EXPECT_FALSE(result->truncation_reason.empty());
  // Best-so-far: whatever was admitted survives, and it is a strict subset
  // of the full enumeration.
  EXPECT_LT(result->rewritings.size(), 3u);
}

TEST_F(GovernedSynchronizerTest, ExpiredDeadlineTruncatesInsteadOfFailing) {
  ViewSynchronizer synchronizer(mkb_);
  ExecContext ctx;
  ctx.WithDeadline(ExecContext::Clock::now() - std::chrono::seconds(1));
  const auto result = synchronizer.Synchronize(view_, change_, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated);
}

TEST_F(GovernedSynchronizerTest, CancellationIsAHardError) {
  ViewSynchronizer synchronizer(mkb_);
  CancelToken token;
  token.Cancel();
  ExecContext ctx;
  ctx.WithCancelToken(&token);
  const auto result = synchronizer.Synchronize(view_, change_, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(GovernedSynchronizerTest, CandidateApiReportsTruncationToo) {
  ViewSynchronizer synchronizer(mkb_);
  ExecContext ctx;
  ctx.WithCandidateBudget(1);
  const auto result = synchronizer.SynchronizeCandidates(view_, change_, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated);
}

TEST_F(GovernedSynchronizerTest, GovernedClosureMemoHitIgnoresBudget) {
  // Cold memo + zero row budget: the closure walk has edges to charge, so
  // the governed variant fails...
  ExecContext exhausted;
  exhausted.WithRowBudget(0);
  const auto cold = mkb_.PcEdgesFromTransitiveGoverned(RelationId{"IS1", "R"},
                                                       4, exhausted);
  ASSERT_FALSE(cold.ok());
  EXPECT_EQ(cold.status().code(), StatusCode::kResourceExhausted);
  // ...but after an ungoverned warm-up the memo hit is free and succeeds
  // even through the exhausted context.
  const auto warm = mkb_.PcEdgesFromTransitiveGoverned(
      RelationId{"IS1", "R"}, 4, ExecContext::Unlimited());
  ASSERT_TRUE(warm.ok());
  const auto hit = mkb_.PcEdgesFromTransitiveGoverned(RelationId{"IS1", "R"},
                                                      4, exhausted);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ((*hit)->size(), (*warm)->size());
}

// --- EveSystem integration ----------------------------------------------------

TEST(EveSystemGovernance, TruncatedEmptyEnumerationIsNeverFalselyDead) {
  EveSystem eve;
  eve.options().materialize = false;
  ExecContext ctx;
  ctx.WithCandidateBudget(0);  // Nothing can ever be admitted.
  eve.options().exec = &ctx;
  ASSERT_TRUE(eve.RegisterRelation("IS1", MakeRelation("R", {"A", "B"},
                                                       {{1, 2}}), 1.0)
                  .ok());
  ASSERT_TRUE(eve.RegisterRelation("IS2", MakeRelation("S", {"A", "C"},
                                                       {{1, 3}}), 1.0)
                  .ok());
  ASSERT_TRUE(eve.AddPcConstraint(
                      MakeProjectionPc(RelationId{"IS1", "R"},
                                       RelationId{"IS2", "S"}, {"A"},
                                       PcRelationType::kSubset))
                  .ok());
  ASSERT_TRUE(eve.DefineView("CREATE VIEW V AS SELECT R.A (AR=true) "
                             "FROM R (RR=true)")
                  .ok());
  const auto report = eve.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  // A cut-off that found nothing must surface as an error -- an empty
  // truncated enumeration proves nothing about view death.
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(eve.GetViewState("V").value_or(ViewState::kDead), ViewState::kDead);
}

TEST(EveSystemGovernance, UngovernedLifecycleUnchanged) {
  EveSystem eve;
  eve.options().materialize = false;
  ASSERT_TRUE(eve.RegisterRelation("IS1", MakeRelation("R", {"A", "B"},
                                                       {{1, 2}}), 1.0)
                  .ok());
  ASSERT_TRUE(eve.RegisterRelation("IS2", MakeRelation("S", {"A", "C"},
                                                       {{1, 3}}), 1.0)
                  .ok());
  ASSERT_TRUE(eve.AddPcConstraint(
                      MakeProjectionPc(RelationId{"IS1", "R"},
                                       RelationId{"IS2", "S"}, {"A"},
                                       PcRelationType::kSubset))
                  .ok());
  ASSERT_TRUE(eve.DefineView("CREATE VIEW V AS SELECT R.A (AR=true) "
                             "FROM R (RR=true)")
                  .ok());
  const auto report = eve.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->views.size(), 1u);
  EXPECT_FALSE(report->views[0].truncated);
  EXPECT_EQ(eve.GetViewState("V").value_or(ViewState::kDead),
            ViewState::kAlive);
}

}  // namespace
}  // namespace eve
