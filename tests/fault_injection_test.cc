// Chaos suite: deterministic fault injection across every armed site in
// the library.  For each site the contract is the same -- an injected
// failure surfaces as a clean non-OK Status (never an abort or undefined
// behavior), no torn state survives, and once the site is disarmed the
// exact same operation succeeds byte-identically to an oracle run captured
// before any fault was armed.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "algebra/executor.h"
#include "common/fault_injection.h"
#include "esql/parser.h"
#include "eve/eve_system.h"
#include "maintenance/maintainer.h"
#include "misd/mkb.h"
#include "plan/plan_cache.h"
#include "plan/planner.h"
#include "space/information_space.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<int>>& rows) {
  std::vector<Attribute> schema;
  for (const std::string& a : attrs) {
    schema.push_back(Attribute::Make(a, DataType::kInt64, 10));
  }
  Relation rel(name, Schema(std::move(schema)));
  for (const auto& row : rows) {
    Tuple t;
    for (int v : row) t.Append(Value(static_cast<int64_t>(v)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

// Every test must leave the process-wide registry clean, or an armed site
// would leak into unrelated tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Instance().Reset(); }
  void TearDown() override { FaultInjection::Instance().Reset(); }
};

// --- Registry semantics -------------------------------------------------------

TEST_F(FaultInjectionTest, DisarmedSiteIsFree) {
  EXPECT_FALSE(FaultInjection::Instance().enabled());
  EXPECT_TRUE(FaultInjection::Probe("nonexistent.site").ok());
  EXPECT_EQ(FaultInjection::Instance().HitCount("nonexistent.site"), 0);
}

TEST_F(FaultInjectionTest, CountWindowSkipsThenFires) {
  FaultInjection& fi = FaultInjection::Instance();
  FaultSpec spec;
  spec.after = 2;
  spec.count = 1;
  fi.Arm("x", spec);
  EXPECT_TRUE(fi.enabled());
  EXPECT_TRUE(fi.OnHit("x").ok());   // Hit 1: in the skip window.
  EXPECT_TRUE(fi.OnHit("x").ok());   // Hit 2: in the skip window.
  const Status fired = fi.OnHit("x");  // Hit 3: fires.
  EXPECT_EQ(fired.code(), StatusCode::kInternal);
  EXPECT_TRUE(fi.OnHit("x").ok());   // Hit 4: window exhausted.
  EXPECT_EQ(fi.HitCount("x"), 4);
  EXPECT_EQ(fi.FiredCount("x"), 1);
}

TEST_F(FaultInjectionTest, StarCountFiresForever) {
  FaultInjection& fi = FaultInjection::Instance();
  ASSERT_TRUE(fi.ArmFromString("x=1+*").ok());
  EXPECT_TRUE(fi.OnHit("x").ok());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(fi.OnHit("x").ok());
  EXPECT_EQ(fi.FiredCount("x"), 5);
}

TEST_F(FaultInjectionTest, InjectedCodeIsConfigurable) {
  FaultInjection& fi = FaultInjection::Instance();
  ASSERT_TRUE(fi.ArmFromString(
                    "a=0:deadline; b=0:cancelled; c=0:resource; "
                    "d=0:failed; e=0:notfound; f=0:internal")
                  .ok());
  EXPECT_EQ(fi.OnHit("a").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(fi.OnHit("b").code(), StatusCode::kCancelled);
  EXPECT_EQ(fi.OnHit("c").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fi.OnHit("d").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fi.OnHit("e").code(), StatusCode::kNotFound);
  EXPECT_EQ(fi.OnHit("f").code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, ProbabilisticFiringIsDeterministic) {
  FaultInjection& fi = FaultInjection::Instance();
  auto pattern = [&](const std::string& spec) {
    fi.Reset();
    EXPECT_TRUE(fi.ArmFromString(spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!fi.OnHit("x").ok());
    return fired;
  };
  const auto first = pattern("x=p0.3@42");
  const auto second = pattern("x=p0.3@42");
  EXPECT_EQ(first, second) << "same seed must reproduce the same run";
  const int fired_count = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired_count, 20);   // ~60 expected; loose deterministic bounds.
  EXPECT_LT(fired_count, 120);
  EXPECT_NE(first, pattern("x=p0.3@43")) << "different seed, different run";
}

TEST_F(FaultInjectionTest, MalformedSpecsAreRejected) {
  FaultInjection& fi = FaultInjection::Instance();
  for (const char* bad :
       {"noequals", "=rule", "x=", "x=abc", "x=-1", "x=2+0", "x=2+x",
        "x=p0.5", "x=p1.5@3", "x=p0.5@zz", "x=0:nosuchcode"}) {
    EXPECT_FALSE(fi.ArmFromString(bad).ok()) << bad;
  }
  // A valid multi-entry spec with whitespace and empty entries parses.
  EXPECT_TRUE(fi.ArmFromString(" a=0 ; ; b=p0.5@7:resource ").ok());
  EXPECT_EQ(fi.ArmedSites().size(), 2u);
}

TEST_F(FaultInjectionTest, RearmReplacesAndResetsCounters) {
  FaultInjection& fi = FaultInjection::Instance();
  ASSERT_TRUE(fi.ArmFromString("x=0+*").ok());
  EXPECT_FALSE(fi.OnHit("x").ok());
  ASSERT_TRUE(fi.ArmFromString("x=5").ok());  // Re-arm: counters reset.
  EXPECT_EQ(fi.HitCount("x"), 0);
  EXPECT_TRUE(fi.OnHit("x").ok());
  fi.Disarm("x");
  EXPECT_FALSE(fi.enabled());
  EXPECT_TRUE(fi.OnHit("x").ok());
}

// --- Chaos walk over every library fault site ---------------------------------

// One joined view over two relations plus maintenance and synchronization
// machinery: enough surface to reach every fault site in the library.
class ChaosWalkTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    FaultInjectionTest::SetUp();
    std::vector<std::vector<int>> r_rows, s_rows;
    for (int i = 0; i < 16; ++i) {
      r_rows.push_back({i, i * 10});
      s_rows.push_back({i, i * 100});
    }
    ASSERT_TRUE(space_.AddRelation("IS1", MakeRelation("R", {"K", "X"}, r_rows))
                    .ok());
    ASSERT_TRUE(space_.AddRelation("IS2", MakeRelation("S", {"K", "Y"}, s_rows))
                    .ok());
    view_ = Parse("CREATE VIEW V AS SELECT R.X, S.Y FROM R, S WHERE R.K = S.K");

    // A separate schema-only world for the synchronizer/MKB sites: R(A,B)
    // with its A column contained in S(A,C), so deleting R has exactly one
    // legal replacement.
    auto int_schema = [](const std::vector<std::string>& names) {
      std::vector<Attribute> attrs;
      for (const std::string& n : names) {
        attrs.push_back(Attribute::Make(n, DataType::kInt64, 50));
      }
      return Schema(std::move(attrs));
    };
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                               int_schema({"A", "B"}), 16, 1.0)
                    .ok());
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS2", "S"},
                                               int_schema({"A", "C"}), 16, 1.0)
                    .ok());
    ASSERT_TRUE(mkb_.AddPcConstraint(
                        MakeProjectionPc(RelationId{"IS1", "R"},
                                         RelationId{"IS2", "S"}, {"A"},
                                         PcRelationType::kSubset))
                    .ok());
    sync_view_ = Parse("CREATE VIEW W AS SELECT R.A (AR=true) "
                       "FROM R (RR=true)");
  }

  // Runs `op` with `site` armed to fail its first hit, then disarmed.
  // Asserts: armed -> clean non-OK Status that actually fired; disarmed ->
  // success with a byte-identical result to `oracle`.
  void ExpectFaultThenRecovery(const std::string& site,
                               const std::function<Result<std::string>()>& op) {
    const auto oracle = op();
    ASSERT_TRUE(oracle.ok()) << site << ": " << oracle.status().ToString();

    FaultInjection& fi = FaultInjection::Instance();
    ASSERT_TRUE(fi.ArmFromString(site + "=0+*").ok());
    const auto faulted = op();
    EXPECT_FALSE(faulted.ok()) << site << " armed but operation succeeded";
    EXPECT_EQ(faulted.status().code(), StatusCode::kInternal) << site;
    EXPECT_GT(fi.FiredCount(site), 0) << site << " never fired";

    fi.Disarm(site);
    const auto recovered = op();
    ASSERT_TRUE(recovered.ok())
        << site << " after disarm: " << recovered.status().ToString();
    EXPECT_EQ(*recovered, *oracle)
        << site << ": post-recovery result differs from the oracle";
  }

  InformationSpace space_;
  MetaKnowledgeBase mkb_;
  ViewDefinition view_;
  ViewDefinition sync_view_;
};

TEST_F(ChaosWalkTest, ExecutionAndPlanningSites) {
  const auto execute = [&]() -> Result<std::string> {
    EVE_ASSIGN_OR_RETURN(Relation rel, ExecuteView(view_, space_));
    return rel.ToString();
  };
  for (const char* site : {"planner.prepare", "planner.pushdown",
                           "executor.probe", "executor.gather",
                           "executor.materialize"}) {
    SCOPED_TRACE(site);
    ExpectFaultThenRecovery(site, execute);
  }
  ExpectFaultThenRecovery("executor.reference", [&]() -> Result<std::string> {
    EVE_ASSIGN_OR_RETURN(Relation rel, ExecuteViewReference(view_, space_));
    return rel.ToString();
  });
}

TEST_F(ChaosWalkTest, PlanCacheSite) {
  ExpectFaultThenRecovery("plan_cache.get", [&]() -> Result<std::string> {
    PlanCache cache;
    EVE_ASSIGN_OR_RETURN(Relation rel, cache.Execute(view_, space_));
    return rel.ToString();
  });
}

TEST_F(ChaosWalkTest, SynchronizerSites) {
  const SchemaChange change = DeleteRelation{RelationId{"IS1", "R"}};
  const auto synchronize = [&]() -> Result<std::string> {
    ViewSynchronizer synchronizer(mkb_);
    EVE_ASSIGN_OR_RETURN(SynchronizationResult result,
                         synchronizer.Synchronize(sync_view_, change));
    std::string out;
    for (const Rewriting& rw : result.rewritings) {
      out += rw.definition.name + ";";
    }
    return out;
  };
  for (const char* site : {"synch.run", "synch.finish"}) {
    SCOPED_TRACE(site);
    ExpectFaultThenRecovery(site, synchronize);
  }
}

TEST_F(ChaosWalkTest, MkbClosureSite) {
  ExpectFaultThenRecovery("mkb.closure", [&]() -> Result<std::string> {
    EVE_ASSIGN_OR_RETURN(
        const std::vector<PcEdge>* edges,
        mkb_.PcEdgesFromTransitiveGoverned(RelationId{"IS1", "R"}, 4,
                                           ExecContext::Unlimited()));
    return std::to_string(edges->size());
  });
}

TEST_F(ChaosWalkTest, MaintainerSites) {
  MaintainerOptions no_backoff;
  no_backoff.recompute_retry_backoff = std::chrono::microseconds(0);
  ExpectFaultThenRecovery("maintainer.recompute", [&]() -> Result<std::string> {
    ViewMaintainer maintainer(space_, no_backoff);
    EVE_ASSIGN_OR_RETURN(Relation rel, maintainer.Recompute(view_));
    return rel.ToString();
  });

  ExpectFaultThenRecovery("maintainer.update", [&]() -> Result<std::string> {
    // A self-contained incremental round: private space so the armed run
    // cannot leave partial state behind for the recovery run.
    InformationSpace space;
    EVE_RETURN_IF_ERROR(space.AddRelation(
        "IS1", MakeRelation("R", {"K", "X"}, {{1, 10}, {2, 20}})));
    EVE_RETURN_IF_ERROR(space.AddRelation(
        "IS2", MakeRelation("S", {"K", "Y"}, {{1, 100}, {2, 200}})));
    const ViewDefinition view =
        Parse("CREATE VIEW V AS SELECT R.X, S.Y FROM R, S WHERE R.K = S.K");
    ViewMaintainer maintainer(space);
    EVE_ASSIGN_OR_RETURN(Relation extent, maintainer.Recompute(view));
    const DataUpdate update{UpdateKind::kInsert, RelationId{"IS1", "R"},
                            Tuple{Value(3), Value(30)}};
    EVE_RETURN_IF_ERROR(space.ApplyDataUpdate(update));
    EVE_RETURN_IF_ERROR(
        maintainer.ProcessUpdate(view, update, &extent).status());
    return extent.ToString();
  });
}

TEST_F(ChaosWalkTest, EveMaterializeSite) {
  ExpectFaultThenRecovery("eve.materialize", [&]() -> Result<std::string> {
    EveSystem eve;  // materialize=true: DefineView materializes immediately.
    EVE_RETURN_IF_ERROR(eve.RegisterRelation(
        "IS1", MakeRelation("R", {"A", "B"}, {{1, 2}, {3, 4}}), 1.0));
    EVE_RETURN_IF_ERROR(eve.DefineView(
        "CREATE VIEW V AS SELECT R.A (AR=true) FROM R (RR=true)"));
    EVE_ASSIGN_OR_RETURN(const Relation extent, eve.GetViewExtent("V"));
    return extent.ToString();
  });
}

// --- Recovery-path behaviors beyond plain retry -------------------------------

TEST_F(ChaosWalkTest, MaintainerRetriesTransientRecomputeFaults) {
  MaintainerOptions options;
  options.max_recompute_attempts = 3;
  options.recompute_retry_backoff = std::chrono::microseconds(0);
  ViewMaintainer maintainer(space_, options);
  FaultInjection& fi = FaultInjection::Instance();

  // Two transient failures, third attempt clean: the retry loop absorbs
  // them and the caller never sees an error.
  ASSERT_TRUE(fi.ArmFromString("maintainer.recompute=0+2").ok());
  const auto recovered = maintainer.Recompute(view_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(fi.FiredCount("maintainer.recompute"), 2);

  // Persistent failure: all attempts burn, the last error propagates.
  ASSERT_TRUE(fi.ArmFromString("maintainer.recompute=0+*").ok());
  const auto failed = maintainer.Recompute(view_);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_EQ(fi.FiredCount("maintainer.recompute"), 3)
      << "must stop at max_recompute_attempts";
}

TEST_F(ChaosWalkTest, MaintainerDoesNotRetryGovernanceFaults) {
  MaintainerOptions options;
  options.recompute_retry_backoff = std::chrono::microseconds(0);
  ViewMaintainer maintainer(space_, options);
  FaultInjection& fi = FaultInjection::Instance();
  // A deadline-coded fault is not transient: exactly one attempt.
  ASSERT_TRUE(fi.ArmFromString("maintainer.recompute=0+*:deadline").ok());
  const auto result = maintainer.Recompute(view_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(fi.FiredCount("maintainer.recompute"), 1);
}

TEST_F(ChaosWalkTest, PlanCacheQuarantinesFaultingPlan) {
  PlanCache cache;
  // Warm the cache, then let execution fail once with an Internal error:
  // the cache must evict the implicated plan, replan, and succeed.
  const auto warm = cache.Execute(view_, space_);
  ASSERT_TRUE(warm.ok());
  FaultInjection& fi = FaultInjection::Instance();
  ASSERT_TRUE(fi.ArmFromString("executor.probe=0+1").ok());
  const auto result = cache.Execute(view_, space_);
  ASSERT_TRUE(result.ok())
      << "one transient execution fault must be absorbed by quarantine: "
      << result.status().ToString();
  EXPECT_EQ(result->ToString(), warm->ToString());
  EXPECT_EQ(cache.stats().quarantines, 1);

  // A persistently faulting plan is NOT retried forever: the second
  // failure propagates.
  ASSERT_TRUE(fi.ArmFromString("executor.probe=0+*").ok());
  const auto persistent = cache.Execute(view_, space_);
  ASSERT_FALSE(persistent.ok());
  EXPECT_EQ(persistent.status().code(), StatusCode::kInternal);
}

TEST_F(ChaosWalkTest, EveSystemLifecycleSurvivesTransientChaos) {
  // Probabilistic chaos over the whole 5-step lifecycle: every outcome must
  // be a clean Status, and after disarming, the change must apply and leave
  // the view alive on its replacement.
  auto lifecycle = []() -> Result<std::string> {
    EveSystem eve;
    EVE_RETURN_IF_ERROR(eve.RegisterRelation(
        "IS1", MakeRelation("R", {"A", "B"}, {{1, 2}, {3, 4}}), 1.0));
    EVE_RETURN_IF_ERROR(eve.RegisterRelation(
        "IS2", MakeRelation("S", {"A", "C"}, {{1, 5}, {3, 6}}), 1.0));
    EVE_RETURN_IF_ERROR(eve.AddPcConstraint(
        MakeProjectionPc(RelationId{"IS1", "R"}, RelationId{"IS2", "S"},
                         {"A"}, PcRelationType::kSubset)));
    EVE_RETURN_IF_ERROR(eve.DefineView(
        "CREATE VIEW V AS SELECT R.A (AR=true) FROM R (RR=true)"));
    EVE_RETURN_IF_ERROR(
        eve.NotifySchemaChange(DeleteRelation{RelationId{"IS1", "R"}})
            .status());
    EVE_ASSIGN_OR_RETURN(const Relation extent, eve.GetViewExtent("V"));
    return extent.ToString();
  };
  const auto oracle = lifecycle();
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  FaultInjection& fi = FaultInjection::Instance();
  ASSERT_TRUE(fi.ArmFromString("executor.probe=p0.2@7; synch.run=p0.2@11; "
                               "mkb.closure=p0.1@13; eve.materialize=p0.3@17")
                  .ok());
  int failures = 0;
  for (int round = 0; round < 20; ++round) {
    const auto chaotic = lifecycle();
    if (!chaotic.ok()) {
      ++failures;
      EXPECT_NE(chaotic.status().code(), StatusCode::kOk);
    } else {
      EXPECT_EQ(*chaotic, *oracle);
    }
  }
  EXPECT_GT(failures, 0) << "chaos was armed but nothing ever failed";

  fi.Reset();
  const auto recovered = lifecycle();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, *oracle);
}

TEST_F(ChaosWalkTest, ConcurrentProbabilisticInjectionIsClean) {
  // Shared prepared plan, four threads, 20% injected faults: exercised
  // under TSan in CI.  Every result is OK or the injected code.
  const auto plan = PrepareView(view_, space_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(FaultInjection::Instance()
                  .ArmFromString("executor.gather=p0.2@23")
                  .ok());
  std::atomic<int> ok_count{0}, injected_count{0}, other_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 25; ++round) {
        const auto result = ExecutePrepared(**plan);
        if (result.ok()) {
          ++ok_count;
        } else if (result.status().code() == StatusCode::kInternal) {
          ++injected_count;
        } else {
          ++other_count;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_GT(ok_count.load(), 0);
  EXPECT_GT(injected_count.load(), 0);
}

}  // namespace
}  // namespace eve
