// Tests of the MISD constraint declaration DSL.

#include <gtest/gtest.h>

#include "esql/constraint_parser.h"

namespace eve {
namespace {

Schema IntSchema(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  for (const std::string& n : names) {
    attrs.push_back(Attribute::Make(n, DataType::kInt64, 25));
  }
  return Schema(std::move(attrs));
}

class ConstraintDslTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS1", "Customer"},
                                               IntSchema({"Name", "Phone"}),
                                               100)
                    .ok());
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS2", "FlightRes"},
                                               IntSchema({"PName", "Dest"}),
                                               200)
                    .ok());
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS3", "Archive"},
                                               IntSchema({"Name", "Tel"}), 300)
                    .ok());
  }
  MetaKnowledgeBase mkb_;
};

TEST_F(ConstraintDslTest, JoinConstraintDeclared) {
  ASSERT_TRUE(DeclareConstraint(
                  "JOIN CONSTRAINT Customer, FlightRes "
                  "ON Customer.Name = FlightRes.PName",
                  &mkb_)
                  .ok());
  const auto found = mkb_.FindJoinConstraints(RelationId{"IS1", "Customer"},
                                              RelationId{"IS2", "FlightRes"});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->condition.ToString(), "Customer.Name = FlightRes.PName");
}

TEST_F(ConstraintDslTest, PcConstraintWithAttributeMapping) {
  ASSERT_TRUE(DeclareConstraint(
                  "PC CONSTRAINT Customer (Name, Phone) SUBSET "
                  "Archive (Name, Tel);",
                  &mkb_)
                  .ok());
  const auto edges = mkb_.PcEdgesFrom(RelationId{"IS1", "Customer"});
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].target, (RelationId{"IS3", "Archive"}));
  EXPECT_EQ(edges[0].type, PcRelationType::kSubset);
  EXPECT_EQ(edges[0].attribute_map.at("Phone"), "Tel");
}

TEST_F(ConstraintDslTest, PcWithSelectionAndSelectivity) {
  const auto parsed = ParseConstraint(
      "PC CONSTRAINT Customer (Name) WHERE Customer.Phone > 100 "
      "SELECTIVITY 0.25 EQUIVALENT Archive (Name)",
      mkb_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& pc = std::get<PcConstraint>(parsed.value());
  EXPECT_DOUBLE_EQ(pc.left.selectivity, 0.25);
  EXPECT_EQ(pc.left.selection.ToString(), "Customer.Phone > 100");
  EXPECT_EQ(pc.type, PcRelationType::kEquivalent);
  EXPECT_DOUBLE_EQ(pc.right.selectivity, 1.0);
}

TEST_F(ConstraintDslTest, SiteQualifiedNamesTakenVerbatim) {
  const auto parsed = ParseConstraint(
      "PC CONSTRAINT IS1.Customer (Name) SUPERSET IS3.Archive (Name)", mkb_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& pc = std::get<PcConstraint>(parsed.value());
  EXPECT_EQ(pc.left.relation, (RelationId{"IS1", "Customer"}));
  EXPECT_EQ(pc.type, PcRelationType::kSuperset);
}

TEST_F(ConstraintDslTest, ErrorsAreReported) {
  // Unknown relation.
  EXPECT_FALSE(ParseConstraint("PC CONSTRAINT Nope (A) SUBSET Archive (Name)",
                               mkb_)
                   .ok());
  // Arity mismatch caught by validation.
  EXPECT_FALSE(ParseConstraint(
                   "PC CONSTRAINT Customer (Name, Phone) SUBSET Archive (Name)",
                   mkb_)
                   .ok());
  // Bad keyword.
  EXPECT_FALSE(
      ParseConstraint("PC CONSTRAINT Customer (Name) WITHIN Archive (Name)",
                      mkb_)
          .ok());
  // Selectivity without selection.
  EXPECT_FALSE(ParseConstraint(
                   "PC CONSTRAINT Customer (Name) SELECTIVITY 0.5 "
                   "SUBSET Archive (Name)",
                   mkb_)
                   .ok());
  // Trailing junk.
  EXPECT_FALSE(ParseConstraint(
                   "JOIN CONSTRAINT Customer, FlightRes ON "
                   "Customer.Name = FlightRes.PName garbage",
                   mkb_)
                   .ok());
}

TEST_F(ConstraintDslTest, DeclaredConstraintDrivesSynchronization) {
  // End-to-end: the DSL-declared PC licenses a replacement.
  ASSERT_TRUE(DeclareConstraint(
                  "PC CONSTRAINT Customer (Name, Phone) SUBSET "
                  "Archive (Name, Tel)",
                  &mkb_)
                  .ok());
  EXPECT_EQ(mkb_.pc_constraints().size(), 1u);
}

}  // namespace
}  // namespace eve
