// E-SQL front-end tests: lexing, parsing of the paper's example queries,
// evolution-parameter handling, error reporting, and the print/parse
// round-trip property.

#include <gtest/gtest.h>

#include "esql/lexer.h"
#include "esql/parser.h"
#include "esql/printer.h"

namespace eve {
namespace {

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  const auto tokens = Lex("R.A <= 10 AND name = 'Asia' <> >= 3.5");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : tokens.value()) types.push_back(t.type);
  const std::vector<TokenType> expected = {
      TokenType::kIdent,  TokenType::kDot,      TokenType::kIdent,
      TokenType::kOperator, TokenType::kInt,    TokenType::kIdent,
      TokenType::kIdent,  TokenType::kOperator, TokenType::kString,
      TokenType::kOperator, TokenType::kOperator, TokenType::kFloat,
      TokenType::kEnd};
  EXPECT_EQ(types, expected);
}

TEST(Lexer, SkipsCommentsAndTracksPositions) {
  const auto tokens = Lex("-- a comment\n  CREATE");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 1u);
  EXPECT_EQ(tokens->front().text, "CREATE");
  EXPECT_EQ(tokens->front().line, 2);
  EXPECT_EQ(tokens->front().column, 3);
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_FALSE(Lex("WHERE x = 'oops").ok());
}

TEST(Lexer, HyphenatedIdentifiers) {
  const auto tokens = Lex("Asia-Customer");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().text, "Asia-Customer");
}

// The paper's Example query (2): the Asia-Customer view.
TEST(Parser, PaperAsiaCustomerView) {
  const auto view = ParseViewDefinition(
      "CREATE VIEW Asia-Customer (VE = equal) AS "
      "SELECT C.Name, C.Address, C.Phone (AD = true, AR = true) "
      "FROM Customer C (RR = true), FlightRes F "
      "WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->name, "Asia-Customer");
  EXPECT_EQ(view->ve, ViewExtent::kEqual);
  ASSERT_EQ(view->select_items.size(), 3u);
  EXPECT_FALSE(view->select_items[0].dispensable);
  EXPECT_TRUE(view->select_items[2].dispensable);
  EXPECT_TRUE(view->select_items[2].replaceable);
  ASSERT_EQ(view->from_items.size(), 2u);
  EXPECT_EQ(view->from_items[0].relation, "Customer");
  EXPECT_EQ(view->from_items[0].alias, "C");
  EXPECT_TRUE(view->from_items[0].replaceable);
  ASSERT_EQ(view->where.size(), 2u);
  EXPECT_TRUE(view->where[0].clause.IsJoinClause());
  EXPECT_TRUE(view->where[1].dispensable);
  EXPECT_EQ(view->where[1].clause.rhs_value().AsString(), "Asia");
}

TEST(Parser, DefaultsMatchFigure3) {
  // Omitted parameters default to false / approximate.
  const auto view =
      ParseViewDefinition("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 1");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->ve, ViewExtent::kApproximate);
  EXPECT_FALSE(view->select_items[0].dispensable);
  EXPECT_FALSE(view->select_items[0].replaceable);
  EXPECT_FALSE(view->from_items[0].dispensable);
  EXPECT_FALSE(view->from_items[0].replaceable);
  EXPECT_FALSE(view->where[0].dispensable);
  EXPECT_FALSE(view->where[0].replaceable);
}

TEST(Parser, VeSpellings) {
  const struct {
    const char* text;
    ViewExtent expected;
  } cases[] = {
      {"~", ViewExtent::kApproximate},      {"any", ViewExtent::kApproximate},
      {"=", ViewExtent::kEqual},            {"equal", ViewExtent::kEqual},
      {">=", ViewExtent::kSuperset},        {"superset", ViewExtent::kSuperset},
      {"<=", ViewExtent::kSubset},          {"subset", ViewExtent::kSubset},
  };
  for (const auto& c : cases) {
    const auto view = ParseViewDefinition(
        std::string("CREATE VIEW V (VE = ") + c.text + ") AS SELECT R.A FROM R");
    ASSERT_TRUE(view.ok()) << c.text << ": " << view.status().ToString();
    EXPECT_EQ(view->ve, c.expected) << c.text;
  }
}

TEST(Parser, SiteQualifiedFromAndAs) {
  const auto view = ParseViewDefinition(
      "CREATE VIEW V AS SELECT R.A AS X, R.B FROM IS1.Rel R");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->from_items[0].site, "IS1");
  EXPECT_EQ(view->from_items[0].relation, "Rel");
  EXPECT_EQ(view->from_items[0].alias, "R");
  EXPECT_EQ(view->select_items[0].output_name, "X");
  EXPECT_EQ(view->select_items[0].name(), "X");
  EXPECT_EQ(view->select_items[1].name(), "B");
}

TEST(Parser, UnqualifiedReferencesResolveWithSingleFrom) {
  const auto view =
      ParseViewDefinition("CREATE VIEW V AS SELECT Name, Phone FROM Customer "
                          "WHERE Phone > 0");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->select_items[0].source.relation, "Customer");
  EXPECT_EQ(view->where[0].clause.lhs.relation, "Customer");
}

TEST(Parser, ValueOpAttrNormalizedByFlipping) {
  const auto view =
      ParseViewDefinition("CREATE VIEW V AS SELECT R.A FROM R WHERE 10 < R.A");
  ASSERT_TRUE(view.ok());
  const PrimitiveClause& c = view->where[0].clause;
  EXPECT_EQ(c.lhs, (RelAttr{"R", "A"}));
  EXPECT_EQ(c.op, CompOp::kGreater);
  EXPECT_EQ(c.rhs_value().AsInt(), 10);
}

struct ParseErrorCase {
  const char* label;
  const char* text;
};

class ParseErrorTest : public ::testing::TestWithParam<ParseErrorCase> {};

TEST_P(ParseErrorTest, Rejected) {
  const auto view = ParseViewDefinition(GetParam().text);
  ASSERT_FALSE(view.ok()) << GetParam().label;
  // Syntax problems surface as ParseError; semantic ones (validation) as
  // InvalidArgument.  Either way the definition must be rejected.
  EXPECT_TRUE(view.status().code() == StatusCode::kParseError ||
              view.status().code() == StatusCode::kInvalidArgument)
      << GetParam().label << ": " << view.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Errors, ParseErrorTest,
    ::testing::Values(
        ParseErrorCase{"missing create", "VIEW V AS SELECT R.A FROM R"},
        ParseErrorCase{"missing from", "CREATE VIEW V AS SELECT R.A"},
        ParseErrorCase{"empty select", "CREATE VIEW V AS SELECT FROM R"},
        ParseErrorCase{"bad ve", "CREATE VIEW V (VE = sideways) AS SELECT R.A FROM R"},
        ParseErrorCase{"bad param", "CREATE VIEW V AS SELECT R.A (XX = true) FROM R"},
        ParseErrorCase{"bad bool", "CREATE VIEW V AS SELECT R.A (AD = maybe) FROM R"},
        ParseErrorCase{"const clause", "CREATE VIEW V AS SELECT R.A FROM R WHERE 1 = 1"},
        ParseErrorCase{"trailing junk", "CREATE VIEW V AS SELECT R.A FROM R garbage ("},
        ParseErrorCase{"unknown relation in where",
                       "CREATE VIEW V AS SELECT R.A FROM R WHERE S.B > 1"}));

// Round-trip: print then re-parse yields the same AST.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParseIdentity) {
  const auto first = ParseViewDefinition(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (const bool defaults : {false, true}) {
    PrintOptions options;
    options.include_default_params = defaults;
    const std::string printed = PrintView(first.value(), options);
    const auto second = ParseViewDefinition(printed);
    ASSERT_TRUE(second.ok()) << printed << "\n" << second.status().ToString();
    EXPECT_EQ(first.value(), second.value()) << printed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Views, RoundTripTest,
    ::testing::Values(
        "CREATE VIEW V AS SELECT R.A FROM R",
        "CREATE VIEW V (VE = subset) AS SELECT R.A (AD=true), R.B (AR=true) "
        "FROM R (RD=true, RR=true) WHERE R.A > 10 (CD=true, CR=true)",
        "CREATE VIEW Asia-Customer AS SELECT C.Name, F.Dest (AD=true) "
        "FROM Customer C (RR=true), FlightRes F "
        "WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD=true)",
        "CREATE VIEW V AS SELECT R.A AS X FROM IS1.R WHERE R.A <> 3.5",
        "CREATE VIEW V AS SELECT a.K, b.K AS K2 FROM T a, T2 b "
        "WHERE (a.K = b.K) AND (a.K >= 100)"));

}  // namespace
}  // namespace eve
