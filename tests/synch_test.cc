// Tests of the view synchronizer against the paper's worked examples:
//   * Example 1 (delete-attribute with dispensable attributes),
//   * Example 4 (delete-relation replaced through a PC + JC pair),
//   * Experiment 1 (the V0 -> {V1, V2, V3} alternatives),
//   * rename changes, legality checking, and the extent lattice.

#include <gtest/gtest.h>

#include <algorithm>

#include "esql/parser.h"
#include "esql/printer.h"
#include "misd/mkb.h"
#include "synch/legality.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

Schema IntSchema(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  for (const std::string& n : names) {
    attrs.push_back(Attribute::Make(n, DataType::kInt64, 50));
  }
  return Schema(std::move(attrs));
}

bool HasRewritingNamed(const SynchronizationResult& result,
                       const std::string& compact) {
  return std::any_of(result.rewritings.begin(), result.rewritings.end(),
                     [&](const Rewriting& rw) {
                       return PrintViewCompact(rw.definition) == compact;
                     });
}

// --- Extent lattice ----------------------------------------------------------

TEST(ExtentLattice, Composition) {
  using E = ExtentRel;
  EXPECT_EQ(ComposeExtentRel(E::kEqual, E::kSubset), E::kSubset);
  EXPECT_EQ(ComposeExtentRel(E::kSubset, E::kEqual), E::kSubset);
  EXPECT_EQ(ComposeExtentRel(E::kSubset, E::kSubset), E::kSubset);
  EXPECT_EQ(ComposeExtentRel(E::kSuperset, E::kSuperset), E::kSuperset);
  EXPECT_EQ(ComposeExtentRel(E::kSubset, E::kSuperset), E::kUnknown);
  EXPECT_EQ(ComposeExtentRel(E::kUnknown, E::kEqual), E::kUnknown);
}

TEST(ExtentLattice, VeDiscipline) {
  using E = ExtentRel;
  EXPECT_TRUE(SatisfiesViewExtent(E::kUnknown, ViewExtent::kApproximate));
  EXPECT_TRUE(SatisfiesViewExtent(E::kEqual, ViewExtent::kEqual));
  EXPECT_FALSE(SatisfiesViewExtent(E::kSubset, ViewExtent::kEqual));
  EXPECT_TRUE(SatisfiesViewExtent(E::kSuperset, ViewExtent::kSuperset));
  EXPECT_FALSE(SatisfiesViewExtent(E::kSubset, ViewExtent::kSuperset));
  EXPECT_TRUE(SatisfiesViewExtent(E::kSubset, ViewExtent::kSubset));
  EXPECT_FALSE(SatisfiesViewExtent(E::kUnknown, ViewExtent::kEqual));
}

// --- Example 1: delete-attribute, drop strategies -----------------------------

class Example1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                               IntSchema({"A", "B", "C"}), 100)
                    .ok());
    view_ = Parse(
        "CREATE VIEW V AS SELECT R.A, R.B (AD=true, AR=true), "
        "R.C (AD=true, AR=true) FROM R WHERE R.A > 10");
  }
  MetaKnowledgeBase mkb_;
  ViewDefinition view_;
};

TEST_F(Example1Test, DeleteDispensableAttributeDropsIt) {
  ViewSynchronizer synchronizer(mkb_);
  const auto result = synchronizer.Synchronize(
      view_, SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "C"}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->affected);
  ASSERT_EQ(result->rewritings.size(), 1u);
  const Rewriting& v1 = result->rewritings[0];
  EXPECT_EQ(v1.definition.select_items.size(), 2u);
  EXPECT_EQ(v1.dropped_attributes, std::vector<std::string>{"C"});
  // Dropping a SELECT item does not change the extent on common attributes.
  EXPECT_EQ(v1.extent_relation, ExtentRel::kEqual);
  EXPECT_TRUE(v1.extent_exact);
}

TEST_F(Example1Test, DropSubsetEnumerationProducesV2) {
  SynchronizerOptions options;
  options.enumerate_drop_subsets = true;
  ViewSynchronizer synchronizer(mkb_, options);
  const auto result = synchronizer.Synchronize(
      view_, SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "C"}));
  ASSERT_TRUE(result.ok());
  // V1 = {A, B}, V2 = {A} (paper Example 1: V2 <IP V1 but still legal).
  EXPECT_EQ(result->rewritings.size(), 2u);
  EXPECT_TRUE(
      HasRewritingNamed(*result, "CREATE VIEW V AS SELECT R.A FROM R "
                                 "WHERE (R.A > 10)"));
}

TEST_F(Example1Test, DeleteIndispensableAttributeKillsView) {
  ViewSynchronizer synchronizer(mkb_);
  const auto result = synchronizer.Synchronize(
      view_, SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "A"}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->affected);
  EXPECT_TRUE(result->rewritings.empty());  // A is indispensable, no PC help.
}

TEST_F(Example1Test, UnreferencedAttributeDeletionDoesNotAffectView) {
  ASSERT_TRUE(mkb_.AddAttribute(RelationId{"IS1", "R"},
                                Attribute::Make("D", DataType::kInt64))
                  .ok());
  ViewSynchronizer synchronizer(mkb_);
  const auto result = synchronizer.Synchronize(
      view_, SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "D"}));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->affected);
}

// --- Example 4: delete-relation, PC-based replacement --------------------------

TEST(Example4Test, ReplaceRelationThroughPcAndAdaptJoin) {
  // V = SELECT R.A, S.B FROM R, S WHERE R.A = S.A; delete R; PC: R ~ T on A;
  // expected rewriting: SELECT T.A, S.B FROM T, S WHERE T.A = S.A.
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                            IntSchema({"A"}), 100)
                  .ok());
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS2", "S"},
                                            IntSchema({"A", "B"}), 100)
                  .ok());
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS3", "T"},
                                            IntSchema({"A", "B"}), 100)
                  .ok());
  ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                   RelationId{"IS3", "T"}, {"A"},
                                                   PcRelationType::kEquivalent))
                  .ok());

  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT R.A (AR=true), S.B FROM R (RR=true), S "
      "WHERE (R.A = S.A) (CR=true)");
  ViewSynchronizer synchronizer(mkb);
  const auto result = synchronizer.Synchronize(
      view, SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rewritings.size(), 1u);
  const Rewriting& rw = result->rewritings[0];
  EXPECT_EQ(rw.strategy, "replace-relation");
  EXPECT_EQ(rw.extent_relation, ExtentRel::kEqual);
  ASSERT_EQ(rw.replacements.size(), 1u);
  EXPECT_EQ(rw.replacements[0].replacement.relation, "T");
  // The FROM clause now references T and the join condition is adapted.
  ASSERT_NE(rw.definition.FindFrom("T"), nullptr);
  EXPECT_EQ(rw.definition.FindFrom("R"), nullptr);
  bool join_adapted = false;
  for (const ConditionItem& c : rw.definition.where) {
    if (c.clause.ToString() == "T.A = S.A") join_adapted = true;
  }
  EXPECT_TRUE(join_adapted) << PrintViewCompact(rw.definition);
}

// --- Experiment 1: V0 and its three alternatives -------------------------------

class Experiment1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                               IntSchema({"A", "B"}), 100)
                    .ok());
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS2", "S"},
                                               IntSchema({"A", "C"}), 100)
                    .ok());
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS3", "T"},
                                               IntSchema({"A", "D"}), 100)
                    .ok());
    // PC_{R,S} = (pi_A(R) <= pi_A(S)) and PC_{R,T} likewise.
    ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(
                        RelationId{"IS1", "R"}, RelationId{"IS2", "S"}, {"A"},
                        PcRelationType::kSubset))
                    .ok());
    ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(
                        RelationId{"IS1", "R"}, RelationId{"IS3", "T"}, {"A"},
                        PcRelationType::kSubset))
                    .ok());
    view_ = Parse(
        "CREATE VIEW V0 AS SELECT R.A (AD=true, AR=true), R.B (AD=true) "
        "FROM R (RR=true)");
  }
  MetaKnowledgeBase mkb_;
  ViewDefinition view_;
};

TEST_F(Experiment1Test, DeleteAttributeAYieldsThreeAlternatives) {
  ViewSynchronizer synchronizer(mkb_);
  const auto result = synchronizer.Synchronize(
      view_, SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "A"}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->affected);

  // V3: drop A, keep R.B.
  EXPECT_TRUE(HasRewritingNamed(
      *result, "CREATE VIEW V0 AS SELECT R.B (AD = true) FROM R (RR = true)"));
  // V1: replace R by S (B dropped since S has no B); V2 likewise with T.
  bool replaced_s = false;
  bool replaced_t = false;
  for (const Rewriting& rw : result->rewritings) {
    for (const ReplacementRecord& rec : rw.replacements) {
      replaced_s = replaced_s || rec.replacement.relation == "S";
      replaced_t = replaced_t || rec.replacement.relation == "T";
    }
  }
  EXPECT_TRUE(replaced_s);
  EXPECT_TRUE(replaced_t);
  // Replacement rewritings keep only A (B is not mapped, but dispensable).
  for (const Rewriting& rw : result->rewritings) {
    if (rw.replacements.empty()) continue;
    ASSERT_EQ(rw.definition.select_items.size(), 1u);
    EXPECT_EQ(rw.definition.select_items[0].name(), "A");
    // R c S: the replacement extends the extent.
    EXPECT_EQ(rw.extent_relation, ExtentRel::kSuperset);
  }
}

TEST_F(Experiment1Test, NonReplaceableBlocksSubstitution) {
  // Same setup, but A non-replaceable: only the drop rewriting remains.
  const ViewDefinition strict = Parse(
      "CREATE VIEW V0 AS SELECT R.A (AD=true), R.B (AD=true) FROM R (RR=true)");
  ViewSynchronizer synchronizer(mkb_);
  const auto result = synchronizer.Synchronize(
      strict, SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "A"}));
  ASSERT_TRUE(result.ok());
  for (const Rewriting& rw : result->rewritings) {
    EXPECT_TRUE(rw.replacements.empty())
        << "non-replaceable attribute was substituted: " << rw.Summary();
  }
}

TEST_F(Experiment1Test, VeEqualRejectsSupersetRewritings) {
  const ViewDefinition strict = Parse(
      "CREATE VIEW V0 (VE = equal) AS SELECT R.A (AD=true, AR=true), "
      "R.B (AD=true) FROM R (RR=true)");
  ViewSynchronizer synchronizer(mkb_);
  const auto result = synchronizer.Synchronize(
      strict, SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "A"}));
  ASSERT_TRUE(result.ok());
  // R c S replacements produce supersets -> illegal under VE '='; the
  // drop-A rewriting keeps the extent equal -> legal.
  ASSERT_EQ(result->rewritings.size(), 1u);
  EXPECT_TRUE(result->rewritings[0].replacements.empty());
  EXPECT_EQ(result->rewritings[0].extent_relation, ExtentRel::kEqual);
}

// --- Renames -------------------------------------------------------------------

TEST(RenameTest, AttributeRenameKeepsInterfaceStable) {
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                            IntSchema({"A", "B"}), 10)
                  .ok());
  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.A, R.B FROM R WHERE R.A > 3");
  ViewSynchronizer synchronizer(mkb);
  const auto result = synchronizer.Synchronize(
      view, SchemaChange(RenameAttribute{RelationId{"IS1", "R"}, "A", "X"}));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewritings.size(), 1u);
  const ViewDefinition& def = result->rewritings[0].definition;
  // Source renamed, exposed name preserved.
  EXPECT_EQ(def.select_items[0].source.attribute, "X");
  EXPECT_EQ(def.select_items[0].name(), "A");
  EXPECT_EQ(def.where[0].clause.lhs.attribute, "X");
  EXPECT_EQ(result->rewritings[0].extent_relation, ExtentRel::kEqual);
  EXPECT_TRUE(result->rewritings[0].extent_exact);
}

TEST(RenameTest, RelationRenameRewritesReferences) {
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                            IntSchema({"A"}), 10)
                  .ok());
  const ViewDefinition view = Parse("CREATE VIEW V AS SELECT R.A FROM R");
  ViewSynchronizer synchronizer(mkb);
  const auto result = synchronizer.Synchronize(
      view, SchemaChange(RenameRelation{RelationId{"IS1", "R"}, "R_new"}));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewritings.size(), 1u);
  const ViewDefinition& def = result->rewritings[0].definition;
  EXPECT_EQ(def.from_items[0].relation, "R_new");
  EXPECT_EQ(def.select_items[0].source.relation, "R_new");
}

TEST(RenameTest, AliasShieldsRelationRename) {
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                            IntSchema({"A"}), 10)
                  .ok());
  const ViewDefinition view = Parse("CREATE VIEW V AS SELECT C.A FROM R C");
  ViewSynchronizer synchronizer(mkb);
  const auto result = synchronizer.Synchronize(
      view, SchemaChange(RenameRelation{RelationId{"IS1", "R"}, "R_new"}));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewritings.size(), 1u);
  const ViewDefinition& def = result->rewritings[0].definition;
  EXPECT_EQ(def.from_items[0].relation, "R_new");
  EXPECT_EQ(def.from_items[0].alias, "C");
  EXPECT_EQ(def.select_items[0].source.relation, "C");  // Unchanged.
}

// --- Join-in strategy ------------------------------------------------------------

TEST(JoinInTest, RecoverAttributeThroughJoinConstraint) {
  // V selects R.A, R.B; R.B deleted; PC maps R.B ~ U.B and JC(R, U) on key.
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                            IntSchema({"K", "A", "B"}), 100)
                  .ok());
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS2", "U"},
                                            IntSchema({"K", "B"}), 100)
                  .ok());
  PcConstraint pc = MakeProjectionPc(RelationId{"IS1", "R"},
                                     RelationId{"IS2", "U"}, {"K", "B"},
                                     PcRelationType::kSubset);
  ASSERT_TRUE(mkb.AddPcConstraint(pc).ok());
  JoinConstraint jc;
  jc.left = RelationId{"IS1", "R"};
  jc.right = RelationId{"IS2", "U"};
  jc.condition.Add(PrimitiveClause::AttrAttr(RelAttr{"R", "K"}, CompOp::kEqual,
                                             RelAttr{"U", "K"}));
  ASSERT_TRUE(mkb.AddJoinConstraint(jc).ok());

  const ViewDefinition view =
      Parse("CREATE VIEW V AS SELECT R.A, R.B (AR=true) FROM R");
  ViewSynchronizer synchronizer(mkb);
  const auto result = synchronizer.Synchronize(
      view, SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "B"}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rewritings.empty());
  bool joined_in = false;
  for (const Rewriting& rw : result->rewritings) {
    if (rw.replacements.size() == 1 && rw.replacements[0].joined_in) {
      joined_in = true;
      // U joined via the JC; B now sourced from U but exposed as B.
      EXPECT_NE(rw.definition.FindFrom("U"), nullptr);
      const SelectItem* b = rw.definition.FindSelect("B");
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(b->source, (RelAttr{"U", "B"}));
      bool jc_present = false;
      for (const ConditionItem& c : rw.definition.where) {
        if (c.clause.ToString() == "R.K = U.K") jc_present = true;
      }
      EXPECT_TRUE(jc_present);
    }
  }
  EXPECT_TRUE(joined_in);
}

// --- CVS pair substitution --------------------------------------------------------

TEST(CvsPairTest, ReplaceRelationByJoinOfTwo) {
  // R(A, B) deleted; R.A recoverable from S1(A, K), R.B from S2(B, K),
  // JC(S1, S2) on K.  The pair substitution covers both attributes.
  MetaKnowledgeBase mkb;
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                            IntSchema({"A", "B"}), 100)
                  .ok());
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS2", "S1"},
                                            IntSchema({"A", "K"}), 100)
                  .ok());
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS3", "S2"},
                                            IntSchema({"B", "K"}), 100)
                  .ok());
  PcConstraint pc1;
  pc1.left = PcSide{RelationId{"IS1", "R"}, {"A"}, {}, 1.0};
  pc1.right = PcSide{RelationId{"IS2", "S1"}, {"A"}, {}, 1.0};
  pc1.type = PcRelationType::kEquivalent;
  ASSERT_TRUE(mkb.AddPcConstraint(pc1).ok());
  PcConstraint pc2;
  pc2.left = PcSide{RelationId{"IS1", "R"}, {"B"}, {}, 1.0};
  pc2.right = PcSide{RelationId{"IS3", "S2"}, {"B"}, {}, 1.0};
  pc2.type = PcRelationType::kEquivalent;
  ASSERT_TRUE(mkb.AddPcConstraint(pc2).ok());
  JoinConstraint jc;
  jc.left = RelationId{"IS2", "S1"};
  jc.right = RelationId{"IS3", "S2"};
  jc.condition.Add(PrimitiveClause::AttrAttr(RelAttr{"S1", "K"}, CompOp::kEqual,
                                             RelAttr{"S2", "K"}));
  ASSERT_TRUE(mkb.AddJoinConstraint(jc).ok());

  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT R.A (AR=true), R.B (AR=true) FROM R (RR=true)");
  ViewSynchronizer synchronizer(mkb);
  const auto result = synchronizer.Synchronize(
      view, SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool found_pair = false;
  for (const Rewriting& rw : result->rewritings) {
    if (rw.replacements.size() == 2) {
      found_pair = true;
      EXPECT_NE(rw.definition.FindFrom("S1"), nullptr);
      EXPECT_NE(rw.definition.FindFrom("S2"), nullptr);
      EXPECT_EQ(rw.definition.select_items.size(), 2u);
    }
  }
  EXPECT_TRUE(found_pair);
}

// --- Legality oracle -----------------------------------------------------------

TEST(LegalityTest, RejectsDroppedIndispensableAttribute) {
  const ViewDefinition original =
      Parse("CREATE VIEW V AS SELECT R.A, R.B (AD=true) FROM R");
  Rewriting bad;
  bad.definition = Parse("CREATE VIEW V AS SELECT R.B (AD = true) FROM R");
  bad.extent_relation = ExtentRel::kEqual;
  EXPECT_FALSE(CheckLegality(original, bad).ok());

  Rewriting good;
  good.definition = Parse("CREATE VIEW V AS SELECT R.A FROM R");
  good.extent_relation = ExtentRel::kEqual;
  EXPECT_TRUE(CheckLegality(original, good).ok());
}

TEST(LegalityTest, RejectsVeViolation) {
  const ViewDefinition original =
      Parse("CREATE VIEW V (VE = subset) AS SELECT R.A FROM R "
            "WHERE R.A > 1 (CD=true)");
  Rewriting superset;
  superset.definition = Parse("CREATE VIEW V (VE = subset) AS SELECT R.A FROM R");
  superset.extent_relation = ExtentRel::kSuperset;
  EXPECT_FALSE(CheckLegality(original, superset).ok());
  superset.extent_relation = ExtentRel::kSubset;
  EXPECT_TRUE(CheckLegality(original, superset).ok());
}

TEST(LegalityTest, RejectsUnrecordedSubstitution) {
  const ViewDefinition original =
      Parse("CREATE VIEW V AS SELECT R.A (AR=true) FROM R (RR=true)");
  Rewriting sneaky;
  sneaky.definition = Parse("CREATE VIEW V AS SELECT X.A AS A FROM X");
  sneaky.extent_relation = ExtentRel::kEqual;
  // No replacement record: the substitution is unexplained -> illegal.
  EXPECT_FALSE(CheckLegality(original, sneaky).ok());
}

// --- Equivalence: memoized PC closure & structural dedup -----------------------
//
// The MKB memoizes PcEdgesFromTransitive and the synchronizer deduplicates
// structurally instead of by rendered string.  Re-running a synchronization
// (warm memo), running it on a freshly built identical MKB (cold memo), and
// mutating the MKB in between must all produce the expected rewriting sets,
// across every schema-change kind and a multi-join view.

// Canonical fingerprint of a rewriting set, order-insensitive.
std::vector<std::string> RewritingFingerprints(
    const SynchronizationResult& result) {
  std::vector<std::string> out;
  for (const Rewriting& rw : result.rewritings) {
    out.push_back(rw.strategy + " | " + PrintViewCompact(rw.definition) +
                  " | " + std::string(ExtentRelToString(rw.extent_relation)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class ClosureEquivalenceTest : public ::testing::Test {
 protected:
  // A multi-join view over R1, R2 with a PC chain R2 -> S1 -> S2 -> S3 and
  // join constraints, so replace-relation, join-in, and cvs-pair all fire.
  static void Build(MetaKnowledgeBase* mkb) {
    ASSERT_TRUE(mkb->RegisterRelationWithStats(RelationId{"IS0", "R1"},
                                               IntSchema({"K"}), 400)
                    .ok());
    ASSERT_TRUE(mkb->RegisterRelationWithStats(RelationId{"IS1", "R2"},
                                               IntSchema({"A", "B", "C"}), 4000)
                    .ok());
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(mkb->RegisterRelationWithStats(
                          RelationId{"IS" + std::to_string(i + 1),
                                     "S" + std::to_string(i)},
                          IntSchema({"A", "B", "C"}), 1000 * i)
                      .ok());
    }
    auto pc = [&](RelationId a, RelationId b, PcRelationType t) {
      ASSERT_TRUE(
          mkb->AddPcConstraint(MakeProjectionPc(a, b, {"A", "B", "C"}, t)).ok());
    };
    pc({"IS1", "R2"}, {"IS2", "S1"}, PcRelationType::kEquivalent);
    pc({"IS2", "S1"}, {"IS3", "S2"}, PcRelationType::kSubset);
    pc({"IS3", "S2"}, {"IS4", "S3"}, PcRelationType::kSubset);
    auto jc = [&](RelationId a, const std::string& an, RelationId b,
                  const std::string& bn) {
      JoinConstraint j;
      j.left = a;
      j.right = b;
      j.condition.Add(PrimitiveClause::AttrAttr(
          RelAttr{an, "A"}, CompOp::kEqual, RelAttr{bn, "A"}));
      ASSERT_TRUE(mkb->AddJoinConstraint(j).ok());
    };
    jc({"IS1", "R2"}, "R2", {"IS2", "S1"}, "S1");
    jc({"IS2", "S1"}, "S1", {"IS3", "S2"}, "S2");
  }

  static ViewDefinition View() {
    return Parse(
        "CREATE VIEW V AS SELECT R2.A (AR=true), R2.B (AD=true, AR=true), "
        "R2.C (AD=true, AR=true) FROM R1, R2 (RD=true, RR=true) "
        "WHERE (R1.K = R2.A) (CD=true, CR=true) AND (R2.B > 5) "
        "(CD=true, CR=true)");
  }

  static std::vector<SchemaChange> AllChangeKinds() {
    return {
        SchemaChange(DeleteAttribute{RelationId{"IS1", "R2"}, "B"}),
        SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}),
        SchemaChange(RenameAttribute{RelationId{"IS1", "R2"}, "B", "B2"}),
        SchemaChange(RenameRelation{RelationId{"IS1", "R2"}, "R2x"}),
        SchemaChange(AddAttribute{RelationId{"IS1", "R2"},
                                  Attribute::Make("D", DataType::kInt64)}),
    };
  }
};

TEST_F(ClosureEquivalenceTest, WarmMemoMatchesColdAcrossAllChangeKinds) {
  MetaKnowledgeBase warm_mkb;
  Build(&warm_mkb);
  ViewSynchronizer warm(warm_mkb);
  for (const SchemaChange& change : AllChangeKinds()) {
    // Cold: a fresh MKB with empty memo per change.
    MetaKnowledgeBase cold_mkb;
    Build(&cold_mkb);
    const auto cold = ViewSynchronizer(cold_mkb).Synchronize(View(), change);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();

    // Warm: the same synchronizer re-used, first and second run.
    const auto first = warm.Synchronize(View(), change);
    const auto second = warm.Synchronize(View(), change);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(RewritingFingerprints(*first), RewritingFingerprints(*cold));
    EXPECT_EQ(RewritingFingerprints(*second), RewritingFingerprints(*cold));
  }
}

TEST_F(ClosureEquivalenceTest, MemoInvalidatedByConstraintRegistration) {
  MetaKnowledgeBase mkb;
  Build(&mkb);
  const SchemaChange change(DeleteRelation{RelationId{"IS1", "R2"}});
  ViewSynchronizer synchronizer(mkb);
  const auto before = synchronizer.Synchronize(View(), change);
  ASSERT_TRUE(before.ok());

  // A new equivalent target reachable only through the new constraint.
  ASSERT_TRUE(mkb.RegisterRelationWithStats(RelationId{"IS9", "Z"},
                                            IntSchema({"A", "B", "C"}), 500)
                  .ok());
  ASSERT_TRUE(mkb.AddPcConstraint(
                     MakeProjectionPc(RelationId{"IS1", "R2"},
                                      RelationId{"IS9", "Z"}, {"A", "B", "C"},
                                      PcRelationType::kEquivalent))
                  .ok());
  const auto after = synchronizer.Synchronize(View(), change);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->rewritings.size(), before->rewritings.size())
      << "stale closure memo: new PC constraint not visible";
  bool replaced_z = false;
  for (const Rewriting& rw : after->rewritings) {
    for (const ReplacementRecord& rec : rw.replacements) {
      replaced_z = replaced_z || rec.replacement.relation == "Z";
    }
  }
  EXPECT_TRUE(replaced_z);
}

TEST_F(ClosureEquivalenceTest, StructuralDedupKeepsDistinctFlagVariants) {
  // Two candidate-producing runs must not merge rewritings that differ only
  // in evolution parameters or extent provenance; conversely identical
  // definitions must collapse to one.
  MetaKnowledgeBase mkb;
  Build(&mkb);
  ViewSynchronizer synchronizer(mkb);
  const auto result = synchronizer.Synchronize(
      View(), SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}));
  ASSERT_TRUE(result.ok());
  // No two surviving rewritings may be structurally equal.
  for (size_t i = 0; i < result->rewritings.size(); ++i) {
    for (size_t j = i + 1; j < result->rewritings.size(); ++j) {
      EXPECT_FALSE(StructurallyEqual(result->rewritings[i].definition,
                                     result->rewritings[j].definition))
          << PrintViewCompact(result->rewritings[i].definition);
    }
  }
}

TEST(StructuralHashTest, EqualDefinitionsHashAlikeAcrossDefaultSpellings) {
  // StructurallyEqual must imply equal StructuralHash, in particular across
  // the printed-form normalization: an explicit output name / alias equal
  // to its default spells the same definition.
  const ViewDefinition a =
      Parse("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 3");
  ViewDefinition b = a;
  b.select_items[0].output_name = "A";  // Explicit default output name.
  b.from_items[0].alias = "R";          // Explicit default alias.
  EXPECT_TRUE(StructurallyEqual(a, b));
  EXPECT_EQ(StructuralHash(a), StructuralHash(b));

  // And a real difference must break equality (flags are significant).
  ViewDefinition c = a;
  c.select_items[0].dispensable = true;
  EXPECT_FALSE(StructurallyEqual(a, c));
}

}  // namespace
}  // namespace eve
