// Experiment 1 (paper §7.1, Figure 12): "survival" of a view.
//
// V0 = SELECT R.A (AD=true, AR=true), R.B (AD=true) FROM R (RR=true);
// MKB: pi_A(R) c pi_A(S), pi_A(R) c pi_A(T).  Capability change 1 deletes
// R.A; the three legal rewritings are V1 (keep A from S), V2 (keep A from
// T), V3 (keep B from R).  The interface weights decide:
//   * w1 > w2 (default 0.7/0.3): EVE keeps the REPLACEABLE attribute A --
//     when the adopted host is later deleted, the sibling still saves the
//     view (alive after two changes);
//   * w2 > w1: EVE keeps the NON-replaceable B -- the next change kills
//     the view.
// The harness replays both branches of Fig. 12's life-span tree.

#include <cstdio>

#include "bench_util/experiment_common.h"
#include "bench_util/policy_flag.h"
#include "bench_util/table_printer.h"
#include "common/parallel.h"
#include "common/str_util.h"
#include "esql/printer.h"
#include "eve/eve_system.h"

using namespace eve;

namespace {

// The --policy / EVE_POLICY preset (bench_util/policy_flag.h); null when
// unset, in which case the driver behaves exactly as before.
const EvolutionPolicy* g_policy = nullptr;

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs, int64_t rows) {
  std::vector<Attribute> schema;
  for (const std::string& a : attrs) {
    schema.push_back(Attribute::Make(a, DataType::kInt64, 50));
  }
  Relation rel(name, Schema(std::move(schema)));
  for (int64_t i = 0; i < rows; ++i) {
    Tuple t;
    for (size_t c = 0; c < attrs.size(); ++c) t.Append(Value(i * 10 + static_cast<int64_t>(c)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

struct BranchResult {
  std::string after_change1;
  std::string after_change2;
  std::vector<std::string> trace;
};

BranchResult RunBranch(double w1, double w2) {
  BranchResult result;
  EveSystem eve;
  if (g_policy != nullptr) (void)g_policy->ApplyTo(eve);
  eve.options().qc.w1 = w1;
  eve.options().qc.w2 = w2;
  eve.options().materialize = false;

  (void)eve.RegisterRelation("IS1", MakeRelation("R", {"A", "B"}, 100), 1.0);
  (void)eve.RegisterRelation("IS2", MakeRelation("S", {"A", "C"}, 120), 1.0);
  (void)eve.RegisterRelation("IS3", MakeRelation("T", {"A", "D"}, 140), 1.0);
  (void)eve.AddPcConstraint(MakeProjectionPc(
      {"IS1", "R"}, {"IS2", "S"}, {"A"}, PcRelationType::kSubset));
  (void)eve.AddPcConstraint(MakeProjectionPc(
      {"IS1", "R"}, {"IS3", "T"}, {"A"}, PcRelationType::kSubset));
  (void)eve.DefineView(
      "CREATE VIEW V0 AS SELECT R.A (AD=true, AR=true), R.B (AD=true) "
      "FROM R (RR=true)");

  // Change 1: delete R.A.
  const auto first = eve.NotifySchemaChange(
      SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "A"}));
  if (!first.ok()) {
    result.after_change1 = "error: " + first.status().ToString();
    return result;
  }
  for (const auto& vr : first->views) {
    for (const auto& ranked : vr.ranking) {
      result.trace.push_back(StrFormat(
          "  rank %d  QC=%s  %s", ranked.rank,
          FormatDouble(ranked.qc, 4).c_str(),
          PrintViewCompact(ranked.rewriting.definition).c_str()));
    }
  }
  const auto def1 = eve.GetViewDefinition("V0");
  result.after_change1 = def1.ok() ? PrintViewCompact(*def1) : "(dead)";
  if (eve.GetViewState("V0").value_or(ViewState::kDead) == ViewState::kDead) {
    result.after_change2 = "(already dead)";
    return result;
  }

  // Change 2: delete whatever the view now depends on.
  const std::string host = def1->from_items[0].relation;
  const std::string site = host == "S"   ? "IS2"
                           : host == "T" ? "IS3"
                                         : "IS1";
  const auto second = eve.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{site, host}}));
  if (!second.ok()) {
    result.after_change2 = "error: " + second.status().ToString();
    return result;
  }
  if (eve.GetViewState("V0").value_or(ViewState::kDead) == ViewState::kDead) {
    result.after_change2 = "(deceased)";
  } else {
    result.after_change2 = PrintViewCompact(*eve.GetViewDefinition("V0"));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto preset = PolicyFromFlags(argc, argv);
  if (!preset.ok()) {
    std::fprintf(stderr, "%s\n", preset.status().ToString().c_str());
    return 2;
  }
  if (preset->has_value()) g_policy = &preset->value();

  std::printf("%s", Banner("Experiment 1 / Figure 12: survival of a view").c_str());
  std::printf(
      "V0 = SELECT R.A (AD,AR), R.B (AD) FROM R (RR); MKB: pi_A(R) c pi_A(S),\n"
      "pi_A(R) c pi_A(T).  Change 1: delete R.A.  Change 2: delete the\n"
      "adopted host relation.\n\n");

  // The two weight branches replay independent EveSystems, so they run
  // across ParallelFor workers (the mutex-guarded MKB closure memos make
  // the synchronize rounds thread-safe); results print in branch order, so
  // stdout is byte-identical to the serial run.
  const struct {
    const char* header;
    double w1, w2;
  } branches[] = {
      {"--- branch w1 > w2 (0.7 / 0.3): prefer replaceable A ---\n", 0.7, 0.3},
      {"--- branch w2 > w1 (0.3 / 0.7): prefer non-replaceable B ---\n", 0.3,
       0.7},
  };
  // Optional --deadline_ms= / EVE_DEADLINE_MS governance, polled between
  // branches; unlimited (and stdout byte-identical) when unset.
  BranchResult results[2];
  ExitIfDeadline(ParallelForStatus(
      2, SweepThreads(argc, argv),
      [&](int64_t i) -> Status {
        results[i] = RunBranch(branches[i].w1, branches[i].w2);
        return Status::OK();
      },
      ExperimentContext(argc, argv)));
  for (int i = 0; i < 2; ++i) {
    const BranchResult& r = results[i];
    std::printf("%s", branches[i].header);
    std::printf("legal rewritings after change 1:\n");
    for (const std::string& line : r.trace) std::printf("%s\n", line.c_str());
    std::printf("adopted:        %s\n", r.after_change1.c_str());
    std::printf("after change 2: %s\n\n", r.after_change2.c_str());
  }

  std::printf(
      "Life-span tree (Fig. 12): with w1 > w2 the view is still alive after\n"
      "two capability changes (V0 -> V1 -> V2); with w2 > w1 it adopts V3\n"
      "and the second change leaves it deceased.  This supports the\n"
      "default setting w1 > w2.\n");
  return 0;
}
