// Experiment 3 (paper §7.3, Figure 14): does the evenness of the relation
// distribution across sites matter?
//
// Setup: six relations over 2, 3 and 4 sites; distributions grouped by
// multiset as in the paper's chart ((1,5) with (5,1), ...); updates
// originate at the FIRST site (paper: "data updates are initiated at the
// first IS"); bytes transferred per update, for js in {0.001, 0.0022,
// 0.005}.
//
// Following the magnitudes of the paper's panels, local-condition damping
// is off (sigma = 1): the delta's growth is then governed purely by
// js * |R| per join (0.4x / 0.88x / 2x), which is exactly the regime change
// the three panels contrast.  EXPERIMENTS.md discusses this choice.

#include <cstdio>
#include <map>

#include "bench_util/distributions.h"
#include "bench_util/experiment_common.h"
#include "bench_util/table_printer.h"
#include "common/str_util.h"

using namespace eve;

int main(int argc, char** argv) {
  std::printf("%s",
              Banner("Experiment 3 / Figure 14: distribution evenness vs bytes").c_str());

  // Parallel across the distribution grid of each m; group averages are
  // assembled from the in-order sweep results, so stdout is identical for
  // every thread count.
  const int threads = SweepThreads(argc, argv);
  std::fprintf(stderr, "[sweep threads: %d]\n", threads);
  // Optional --deadline_ms= / EVE_DEADLINE_MS governance; unlimited (and
  // stdout byte-identical) when unset.
  const ExecContext& ctx = ExperimentContext(argc, argv);

  for (const double js : {0.001, 0.0022, 0.005}) {
    UniformParams params;
    params.join_selectivity = js;
    params.local_selectivity = 1.0;  // See header comment.
    const CostModelOptions options = MakeUniformOptions(params);

    std::printf("--- js = %s (js*|R| = %s) ---\n", FormatDouble(js, 4).c_str(),
                FormatDouble(js * static_cast<double>(params.cardinality), 2).c_str());
    TablePrinter table({"group", "sites", "CF_T/update (bytes)"});
    std::vector<std::string> x_labels;
    std::vector<double> bytes;
    for (int m = 2; m <= 4; ++m) {
      const std::vector<std::vector<int>> dists =
          Compositions(params.num_relations, m);
      const auto cfs =
          SweepFirstSiteUpdateCost(dists, params, options, threads, ctx);
      if (!cfs.ok()) {
        ExitIfDeadline(cfs.status());
        std::fprintf(stderr, "%s\n", cfs.status().ToString().c_str());
        return 1;
      }
      std::map<std::string, double> bytes_of;
      for (size_t i = 0; i < dists.size(); ++i) {
        bytes_of[DistributionLabel(dists[i])] = (*cfs)[i].bytes;
      }
      for (const DistributionGroup& group :
           GroupedCompositions(params.num_relations, m)) {
        double sum = 0;
        for (const std::vector<int>& dist : group.members) {
          sum += bytes_of.at(DistributionLabel(dist));
        }
        const double avg = sum / static_cast<double>(group.members.size());
        table.AddRow({group.label, FormatDouble(m), FormatDouble(avg, 1)});
        x_labels.push_back(group.label);
        bytes.push_back(avg);
      }
    }
    std::printf("%s\n", table.Render().c_str());
    std::printf("%s\n",
                RenderSeries("bytes transferred per update", x_labels, bytes).c_str());
  }

  std::printf(
      "Findings (paper §7.3): with high js (delta grows along the chain)\n"
      "even distributions win; with low js (delta shrinks) skewed ones do;\n"
      "around js*|R| = 1 evenness has no clear impact.  The number of sites\n"
      "dominates either way.\n");
  return 0;
}
