// Policy-curve ablation driver: replays the same seeded evolution stream
// (bench_util/scenario.h) under each EvolutionPolicy preset and reports
// quality lost vs enumeration work saved -- the acceptance curve of the
// selective rewriting policy.
//
// For every topology (star and, unless --star-only, snowflake) and every
// preset (exhaustive / balanced / latency_bound) the driver replays the
// stream and records the policy counters (policy/policy.h) plus the mean
// adopted QC (Eq. 26).  "Work" is candidates_considered: rewriting
// candidates derived and offered to the enumeration sinks.  The summary
// relates each selective preset to the exhaustive oracle:
//   savings_vs_exhaustive = considered_exhaustive / considered_preset
//   quality_delta         = (qc_exhaustive - qc_preset) / qc_exhaustive
//
// Output is JSON on stdout (or --out=FILE), one object per (topology,
// policy) plus the derived summary -- the CI scenario tier uploads it as
// an artifact.
//
// Flags (all optional):
//   --events=N     stream length         (default 2000)
//   --views=N      view count            (default 32)
//   --families=N   dimension families    (default 6)
//   --replicas=N   replicas per family   (default 6)
//   --mirrors=N    partial mirrors per family (default 12; the
//                  complementary-coverage CVS pair material -- 0 restores
//                  the mirror-free space, where capping saves ~nothing)
//   --rows=N       rows per relation     (default 1024)
//   --seed=N       scenario/stream seed  (default 42)
//   --star-only    skip the snowflake topology
//   --out=FILE     write the JSON to FILE instead of stdout

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/scenario.h"
#include "policy/evolution_policy.h"

using namespace eve;

namespace {

int64_t FlagValue(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool FlagSet(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::string FlagString(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

struct CurvePoint {
  std::string topology;
  std::string policy;
  PolicyStats stats;
  double mean_adopted_qc = 0;
  int64_t adoptions = 0;
  int alive_views = 0;
  int dead_views = 0;
  double total_ms = 0;
};

std::string PointJson(const CurvePoint& p) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"topology\": \"%s\", \"policy\": \"%s\", \"decisions\": %lld, "
      "\"full\": %lld, \"capped\": %lld, \"skip_unaffected\": %lld, "
      "\"skip_dead\": %lld, \"candidates_considered\": %lld, "
      "\"candidates_ranked\": %lld, \"adoptions\": %lld, "
      "\"mean_adopted_qc\": %.6f, \"alive_views\": %d, \"dead_views\": %d, "
      "\"total_ms\": %.1f}",
      p.topology.c_str(), p.policy.c_str(),
      static_cast<long long>(p.stats.decisions),
      static_cast<long long>(p.stats.full),
      static_cast<long long>(p.stats.capped),
      static_cast<long long>(p.stats.skipped_unaffected),
      static_cast<long long>(p.stats.skipped_dead),
      static_cast<long long>(p.stats.candidates_considered),
      static_cast<long long>(p.stats.candidates_ranked),
      static_cast<long long>(p.adoptions), p.mean_adopted_qc, p.alive_views,
      p.dead_views, p.total_ms);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioOptions scenario;
  scenario.seed = static_cast<uint64_t>(FlagValue(argc, argv, "seed", 42));
  scenario.families = static_cast<int>(FlagValue(argc, argv, "families", 6));
  scenario.replicas_per_family =
      static_cast<int>(FlagValue(argc, argv, "replicas", 6));
  scenario.partial_mirrors =
      static_cast<int>(FlagValue(argc, argv, "mirrors", 12));
  scenario.views = static_cast<int>(FlagValue(argc, argv, "views", 32));
  scenario.dimension_rows = FlagValue(argc, argv, "rows", 1024);
  scenario.fact_rows = scenario.dimension_rows;
  const int events = static_cast<int>(FlagValue(argc, argv, "events", 2000));

  std::vector<bool> topologies = {false};
  if (!FlagSet(argc, argv, "star-only")) topologies.push_back(true);
  const EvolutionPolicy presets[] = {EvolutionPolicy::Exhaustive(),
                                     EvolutionPolicy::Balanced(),
                                     EvolutionPolicy::LatencyBound()};

  std::vector<CurvePoint> points;
  for (const bool snowflake : topologies) {
    for (const EvolutionPolicy& preset : presets) {
      ScenarioOptions topo = scenario;
      topo.snowflake = snowflake;
      EveOptions eve_options = preset.ToEveOptions();
      eve_options.materialize = false;
      auto system = BuildScenarioSystem(topo, eve_options);
      if (!system.ok()) {
        std::fprintf(stderr, "build failed (%s): %s\n", preset.name.c_str(),
                     system.status().ToString().c_str());
        return 1;
      }
      (*system)->mkb().set_selective_invalidation(
          preset.selective_invalidation);

      const std::vector<ScenarioEvent> stream =
          GenerateEventStream(topo, events, topo.seed + 1);
      ReplayOptions replay;
      replay.sample_stride = events;  // Curve totals only; no sample spam.
      replay.track_replaceability = false;  // Isolate the enumeration work.
      const auto result = ReplayScenario(**system, stream, replay);
      if (!result.ok()) {
        std::fprintf(stderr, "replay failed (%s): %s\n", preset.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      CurvePoint point;
      point.topology = snowflake ? "snowflake" : "star";
      point.policy = preset.name;
      point.stats = result->final_policy;
      point.mean_adopted_qc = result->MeanAdoptedQc();
      point.adoptions = result->adoptions;
      point.alive_views = result->alive_views;
      point.dead_views = result->dead_views;
      point.total_ms = result->total_micros / 1000.0;
      points.push_back(std::move(point));
    }
  }

  std::string json = "{\n";
  json += "  \"events\": " + std::to_string(events) + ",\n";
  json += "  \"views\": " + std::to_string(scenario.views) + ",\n";
  json += "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    json += PointJson(points[i]);
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"summary\": [\n";
  // Relate each selective point to its topology's exhaustive baseline.
  std::string summary;
  for (const CurvePoint& p : points) {
    if (p.policy == "exhaustive") continue;
    const CurvePoint* base = nullptr;
    for (const CurvePoint& b : points) {
      if (b.topology == p.topology && b.policy == "exhaustive") base = &b;
    }
    if (base == nullptr) continue;
    const double savings =
        p.stats.candidates_considered > 0
            ? static_cast<double>(base->stats.candidates_considered) /
                  static_cast<double>(p.stats.candidates_considered)
            : 0.0;
    const double quality_delta =
        base->mean_adopted_qc > 0
            ? (base->mean_adopted_qc - p.mean_adopted_qc) /
                  base->mean_adopted_qc
            : 0.0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"topology\": \"%s\", \"policy\": \"%s\", "
                  "\"savings_vs_exhaustive\": %.3f, \"quality_delta\": %.6f}",
                  p.topology.c_str(), p.policy.c_str(), savings,
                  quality_delta);
    if (!summary.empty()) summary += ",\n";
    summary += buf;
  }
  json += summary + "\n  ]\n}\n";

  const std::string out_path = FlagString(argc, argv, "out");
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    // A one-line echo so ctest logs show the curve without the artifact.
    for (const CurvePoint& p : points) {
      std::printf("%s/%s: considered=%lld mean_qc=%.4f\n", p.topology.c_str(),
                  p.policy.c_str(),
                  static_cast<long long>(p.stats.candidates_considered),
                  p.mean_adopted_qc);
    }
  }
  return 0;
}
