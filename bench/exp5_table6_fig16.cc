// Experiment 5, workload model M3 (paper §7.5, Table 6 + Figure 16): a
// constant number of updates per information source (10 per site per time
// unit), extending Experiment 2.  The six-relation view over m sites faces
// 10m updates; totals for all three cost factors are reported per m.
//
// Paper rows (m, #updates, CF_M, CF_T, CF_IO):
//   (1, 10, 30, 8000, 310)      (2, 20, 92, 27200, 620)
//   (3, 30, 186, 57600, 930)    (4, 40, 312, 99200, 1240)
//   (5, 50, 470, 152000, 1550)  (6, 60, 660, 216000, 1860)
// This harness reproduces them exactly.

#include <cstdio>

#include "bench_util/distributions.h"
#include "bench_util/experiment_common.h"
#include "bench_util/table_printer.h"
#include "common/str_util.h"
#include "qc/workload.h"

using namespace eve;

int main(int argc, char** argv) {
  std::printf("%s",
              Banner("Experiment 5 / Table 6, Figure 16: workload model M3").c_str());

  const UniformParams params;  // Table 1 defaults.
  const CostModelOptions options = MakeUniformOptions(params);
  WorkloadOptions workload;
  workload.model = WorkloadModel::kM3PerSite;
  workload.updates_per_site = 10.0;

  // Parallel across distributions, reduced in input order (stdout is
  // identical for every thread count; the count itself goes to stderr).
  const int threads = SweepThreads(argc, argv);
  std::fprintf(stderr, "[sweep threads: %d]\n", threads);
  // Optional --deadline_ms= / EVE_DEADLINE_MS governance; unlimited (and
  // stdout byte-identical) when unset.
  const ExecContext& ctx = ExperimentContext(argc, argv);

  TablePrinter table({"Rewriting", "#sites", "#updates", "CF_M", "CF_T",
                      "CF_IO"});
  std::vector<std::string> x_labels;
  std::vector<double> msgs, bytes, ios;
  for (int m = 1; m <= params.num_relations; ++m) {
    const std::vector<std::vector<int>> dists =
        Compositions(params.num_relations, m);
    const auto totals =
        SweepWorkloadCost(dists, params, workload, options, threads, ctx);
    if (!totals.ok()) {
      ExitIfDeadline(totals.status());
      std::fprintf(stderr, "%s\n", totals.status().ToString().c_str());
      return 1;
    }
    double n = 0;
    double u_sum = 0, m_sum = 0, t_sum = 0, io_sum = 0;
    for (const WorkloadCost& total : *totals) {
      u_sum += total.updates;
      m_sum += total.factors.messages;
      t_sum += total.factors.bytes;
      io_sum += total.factors.ios;
      n += 1;
    }
    table.AddRow({StrFormat("V%d", m), FormatDouble(m),
                  FormatDouble(u_sum / n, 0), FormatDouble(m_sum / n, 0),
                  FormatDouble(t_sum / n, 0), FormatDouble(io_sum / n, 0)});
    x_labels.push_back(StrFormat("m=%d", m));
    msgs.push_back(m_sum / n);
    bytes.push_back(t_sum / n);
    ios.push_back(io_sum / n);
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("%s\n", RenderSeries("Fig 16: messages exchanged", x_labels, msgs).c_str());
  std::printf("%s\n", RenderSeries("Fig 16: bytes transferred", x_labels, bytes).c_str());
  std::printf("%s\n", RenderSeries("Fig 16: I/O operations", x_labels, ios).c_str());

  std::printf(
      "Finding (paper §7.5): under M3 a rewriting over fewer sites wins\n"
      "twice -- fewer updates arrive AND each update is cheaper.  The\n"
      "QC-Model therefore favors rewritings referencing few ISs.\n");
  return 0;
}
