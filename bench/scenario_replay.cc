// Evolution-stream replay driver (bench_util/scenario.h): builds a seeded
// star/snowflake space, streams thousands of interleaved capability changes
// and data updates through the system, and emits the survival / quality /
// cost / memo curves as CSV (stdout) plus a summary (stderr-free, after the
// CSV, prefixed with '#' so the CSV stays machine-readable).
//
// Flags (all optional):
//   --events=N         stream length            (default 2000)
//   --views=N          view count               (default 32)
//   --families=N       dimension families       (default 6)
//   --replicas=N       replicas per family      (default 6)
//   --mirrors=N        partial-coverage subset mirrors per family
//                      (default 0; the CVS pair fan-out material)
//   --rows=N           rows per dimension/fact  (default 10000)
//   --seed=N           scenario + stream seed   (default 42)
//   --stride=N         sample every N events    (default 10)
//   --snowflake        add second-level chains
//   --full-flush       disable delta-aware invalidation (the oracle mode)
//   --threads=N        synchronization workers  (default 0 = auto)
//   --policy=NAME      EvolutionPolicy preset (exhaustive / balanced /
//                      latency_bound); also via EVE_POLICY.  Unset runs
//                      exactly as before (stdout byte-identical).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util/policy_flag.h"
#include "bench_util/scenario.h"

using namespace eve;

namespace {

int64_t FlagValue(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool FlagSet(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioOptions scenario;
  scenario.seed = static_cast<uint64_t>(FlagValue(argc, argv, "seed", 42));
  scenario.families = static_cast<int>(FlagValue(argc, argv, "families", 6));
  scenario.replicas_per_family =
      static_cast<int>(FlagValue(argc, argv, "replicas", 6));
  scenario.partial_mirrors =
      static_cast<int>(FlagValue(argc, argv, "mirrors", 0));
  scenario.views = static_cast<int>(FlagValue(argc, argv, "views", 32));
  scenario.dimension_rows = FlagValue(argc, argv, "rows", 10000);
  scenario.fact_rows = scenario.dimension_rows;
  scenario.snowflake = FlagSet(argc, argv, "snowflake");
  const int events = static_cast<int>(FlagValue(argc, argv, "events", 2000));

  const auto preset = PolicyFromFlags(argc, argv);
  if (!preset.ok()) {
    std::fprintf(stderr, "%s\n", preset.status().ToString().c_str());
    return 2;
  }
  EveOptions eve_options =
      preset->has_value() ? (*preset)->ToEveOptions() : EveOptions{};
  eve_options.materialize = false;
  eve_options.synchronize_threads =
      static_cast<int>(FlagValue(argc, argv, "threads", 0));

  auto system = BuildScenarioSystem(scenario, eve_options);
  if (!system.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }
  (*system)->mkb().set_selective_invalidation(
      preset->has_value() ? (*preset)->selective_invalidation &&
                                !FlagSet(argc, argv, "full-flush")
                          : !FlagSet(argc, argv, "full-flush"));

  const std::vector<ScenarioEvent> stream =
      GenerateEventStream(scenario, events, scenario.seed + 1);
  if (FlagSet(argc, argv, "dump-stream")) {
    for (size_t i = 0; i < stream.size(); ++i) {
      std::printf("%zu %s\n", i, stream[i].ToString().c_str());
    }
    return 0;
  }

  ReplayOptions replay;
  replay.sample_stride = static_cast<int>(FlagValue(argc, argv, "stride", 10));
  const auto result = ReplayScenario(**system, stream, replay);
  if (!result.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::fputs(result->CurvesCsv().c_str(), stdout);
  const MkbMemoStats& memo = result->final_memo;
  const int64_t sweeps = memo.memo_survivals + memo.selective_drops;
  std::printf("# events=%d schema_changes=%d data_updates=%d relinks=%d\n",
              result->events_applied, result->schema_changes,
              result->data_updates, result->relinks);
  std::printf("# alive_views=%d dead_views=%d total_ms=%.1f\n",
              result->alive_views, result->dead_views,
              result->total_micros / 1000.0);
  std::printf(
      "# closure_hits=%lld closure_misses=%lld survivals=%lld drops=%lld "
      "full_flushes=%lld survival_rate=%.3f\n",
      static_cast<long long>(memo.closure_hits),
      static_cast<long long>(memo.closure_misses),
      static_cast<long long>(memo.memo_survivals),
      static_cast<long long>(memo.selective_drops),
      static_cast<long long>(memo.full_flushes),
      sweeps > 0 ? static_cast<double>(memo.memo_survivals) / sweeps : 0.0);
  if (preset->has_value()) {
    // Policy summary lines print ONLY when a preset was requested, so the
    // default invocation's stdout stays byte-identical to the seed's.
    const PolicyStats& p = result->final_policy;
    std::printf(
        "# policy=%s decisions=%lld full=%lld capped=%lld "
        "skip_unaffected=%lld skip_dead=%lld considered=%lld ranked=%lld "
        "mean_adopted_qc=%.4f\n",
        (*preset)->name.c_str(), static_cast<long long>(p.decisions),
        static_cast<long long>(p.full), static_cast<long long>(p.capped),
        static_cast<long long>(p.skipped_unaffected),
        static_cast<long long>(p.skipped_dead),
        static_cast<long long>(p.candidates_considered),
        static_cast<long long>(p.candidates_ranked),
        result->MeanAdoptedQc());
  }
  return 0;
}
