// Ablation of the search-pruning heuristics the paper derives in §7.6.
// For each heuristic we construct a family of rewriting alternatives that
// differ only in the pruned dimension and verify that the QC-Model's full
// evaluation agrees with the heuristic's shortcut:
//
//   H1  prefer rewritings over fewer information sources;
//   H2  prefer replacement relations with smaller cardinality (cost side);
//   H3  prefer the replacement closest in size to the dropped relation
//       (quality side; together with H2 the trade-off of Experiment 4);
//   H4  prefer rewritings with fewer relations in the FROM clause.

#include <cstdio>
#include <vector>

#include "bench_util/distributions.h"
#include "bench_util/experiment_common.h"
#include "common/parallel.h"
#include "bench_util/table_printer.h"
#include "common/str_util.h"
#include "misd/overlap_estimator.h"
#include "qc/parameters.h"
#include "qc/workload.h"

using namespace eve;

namespace {

double WeightedPerUpdate(const ViewCostInput& input,
                         const CostModelOptions& options,
                         const QcParameters& params) {
  WorkloadOptions workload;  // M4, one update, averaged over origins.
  workload.model = WorkloadModel::kM4FixedPerView;
  workload.updates_per_view = 1.0;
  const auto cost = ComputeWorkloadCost(input, workload, options);
  return cost.ok() ? cost->Weighted(params) : -1.0;
}

std::string H1FewerSites() {
  std::string out = Banner("H1: fewer information sources -> cheaper");
  const UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  QcParameters qc;
  TablePrinter table({"distribution", "sites", "Cost (Eq. 24)"});
  double prev = -1;
  bool monotone = true;
  for (const std::vector<int>& dist :
       {std::vector<int>{6}, {3, 3}, {2, 2, 2}, {2, 2, 1, 1},
        {2, 1, 1, 1, 1}, {1, 1, 1, 1, 1, 1}}) {
    const double cost =
        WeightedPerUpdate(MakeUniformInput(dist, params), options, qc);
    table.AddRow({DistributionLabel(dist),
                  FormatDouble(static_cast<double>(dist.size())),
                  FormatDouble(cost, 1)});
    if (prev >= 0 && cost < prev) monotone = false;
    prev = cost;
  }
  out += table.Render() + "\n";
  out += StrFormat("cost monotonically increases with #sites: %s\n\n",
                   monotone ? "CONFIRMED" : "violated");
  return out;
}

std::string H2SmallerReplacement() {
  std::string out = Banner("H2: smaller replacement relation -> cheaper");
  QcParameters qc;
  CostModelOptions options;
  options.io_policy = IoBoundPolicy::kUpper;
  options.block.block_bytes = 1000;
  TablePrinter table({"|replacement|", "Cost (Eq. 24, update at partner)"});
  double prev = -1;
  bool monotone = true;
  for (int64_t card : {1000, 2000, 4000, 8000, 16000}) {
    ViewCostInput input;
    input.join_selectivity = 0.005;
    input.relations.push_back(CostRelation{{"A", "R1"}, 400, 100, 1.0});
    input.relations.push_back(CostRelation{{"B", "S"}, card, 100, 0.5});
    const auto cf = SingleUpdateCost(input, 0, options);
    const double cost = cf.ok() ? cf->Weighted(qc) : -1;
    table.AddRow({FormatDouble(static_cast<double>(card)),
                  FormatDouble(cost, 1)});
    if (prev >= 0 && cost < prev) monotone = false;
    prev = cost;
  }
  out += table.Render() + "\n";
  out += StrFormat("cost monotonically increases with |replacement|: %s\n\n",
                   monotone ? "CONFIRMED" : "violated");
  return out;
}

std::string H3ClosestSize() {
  std::string out = Banner("H3: replacement closest in size -> least divergence");
  // Dropped relation of 4000 tuples; candidate chain around it.
  TablePrinter table({"|replacement|", "relation", "DD_ext (est.)"});
  QcParameters qc;
  const int64_t dropped = 4000;
  struct Candidate {
    int64_t card;
    PcRelationType type;
  };
  double best_dd = 2.0;
  int64_t best_card = -1;
  for (const Candidate& c :
       {Candidate{1000, PcRelationType::kSuperset},
        Candidate{2000, PcRelationType::kSuperset},
        Candidate{4000, PcRelationType::kEquivalent},
        Candidate{8000, PcRelationType::kSubset},
        Candidate{16000, PcRelationType::kSubset}}) {
    PcEdge edge;
    edge.source = RelationId{"X", "R"};
    edge.target = RelationId{"Y", "S"};
    edge.type = c.type;
    edge.attribute_map["A"] = "A";
    const OverlapEstimate overlap = EstimateIntersection(edge, dropped, c.card);
    const double d1 = 1.0 - overlap.size / static_cast<double>(dropped);
    const double d2 = 1.0 - overlap.size / static_cast<double>(c.card);
    const double dd_ext = qc.rho_d1 * d1 + qc.rho_d2 * d2;
    table.AddRow({FormatDouble(static_cast<double>(c.card)),
                  std::string(PcRelationTypeToString(c.type)),
                  FormatDouble(dd_ext, 4)});
    if (dd_ext < best_dd) {
      best_dd = dd_ext;
      best_card = c.card;
    }
  }
  out += table.Render() + "\n";
  out += StrFormat(
      "minimum divergence at |replacement| = %lld (= |dropped|): %s\n\n",
      static_cast<long long>(best_card),
      best_card == dropped ? "CONFIRMED" : "violated");
  return out;
}

std::string H4FewerRelations() {
  std::string out = Banner("H4: fewer FROM relations -> cheaper");
  QcParameters qc;
  const UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  TablePrinter table({"#relations", "Cost (Eq. 24)"});
  double prev = -1;
  bool monotone = true;
  for (int n = 2; n <= 6; ++n) {
    UniformParams p = params;
    p.num_relations = n;
    // All relations on two sites, as even as possible.
    std::vector<int> dist{(n + 1) / 2, n / 2};
    const double cost =
        WeightedPerUpdate(MakeUniformInput(dist, p), options, qc);
    table.AddRow({FormatDouble(n), FormatDouble(cost, 1)});
    if (prev >= 0 && cost < prev) monotone = false;
    prev = cost;
  }
  out += table.Render() + "\n";
  out += StrFormat("cost monotonically increases with #relations: %s\n\n",
                   monotone ? "CONFIRMED" : "violated");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // The four ablation sections are independent, so they render across
  // ParallelFor workers into per-section strings and print in order --
  // stdout stays byte-identical to the serial run.
  using SectionFn = std::string (*)();
  const SectionFn sections[] = {H1FewerSites, H2SmallerReplacement,
                                H3ClosestSize, H4FewerRelations};
  // Optional --deadline_ms= / EVE_DEADLINE_MS governance, polled between
  // sections; unlimited (and stdout byte-identical) when unset.
  std::string rendered[4];
  ExitIfDeadline(ParallelForStatus(
      4, SweepThreads(argc, argv),
      [&](int64_t i) -> Status {
        rendered[i] = sections[i]();
        return Status::OK();
      },
      ExperimentContext(argc, argv)));
  for (const std::string& section : rendered) {
    std::printf("%s", section.c_str());
  }
  std::printf(
      "Summary (paper §7.6): a view synchronizer can prune the rewriting\n"
      "search with these heuristics before computing full QC scores.\n");
  return 0;
}
