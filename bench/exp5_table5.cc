// Experiment 5, workload model M1 (paper §7.5, Table 5): the number of
// updates is proportional to the relation's size (1 update per 100 tuples).
//
// The paper's Table 5 keeps the normalized costs of Table 4 ({0, .25, .5,
// .75, 1}) and argues that "since our model normalizes the cost factor ...
// both the normalized cost factors and hence the final efficiency values
// are unchanged".  Computed exactly (total = cost/update x #updates, then
// Eq. 25), the normalized costs are {0, .161, .381, .661, 1} because the
// per-update cost is affine -- not proportional -- in |S|.  The paper's
// CONCLUSION is nevertheless correct: the ranking V3 > V2 > V1 > V4 > V5
// is unchanged.  This harness prints both the paper's claimed values and
// the exact ones.

#include <cstdio>
#include <map>

#include "bench_util/experiment_common.h"
#include "bench_util/table_printer.h"
#include "common/str_util.h"
#include "esql/parser.h"
#include "misd/mkb.h"
#include "qc/quality.h"
#include "qc/ranking.h"
#include "synch/synchronizer.h"

using namespace eve;

namespace {

// Same environment as Experiment 4 (see exp4_table4_fig15.cc).
struct Environment {
  MetaKnowledgeBase mkb;
  ViewDefinition view;
  std::vector<Rewriting> rewritings;
};

bool Build(Environment* env) {
  const Schema abc({Attribute::Make("A", DataType::kInt64, 34),
                    Attribute::Make("B", DataType::kInt64, 33),
                    Attribute::Make("C", DataType::kInt64, 33)});
  const Schema r1({Attribute::Make("K", DataType::kInt64, 100)});
  if (!env->mkb.RegisterRelationWithStats({"IS0", "R1"}, r1, 400, 0.5).ok() ||
      !env->mkb.RegisterRelationWithStats({"IS1", "R2"}, abc, 4000, 0.5).ok()) {
    return false;
  }
  const int64_t cards[] = {2000, 3000, 4000, 5000, 6000};
  for (int i = 0; i < 5; ++i) {
    const RelationId id{"IS" + std::to_string(i + 2), "S" + std::to_string(i + 1)};
    if (!env->mkb.RegisterRelationWithStats(id, abc, cards[i], 0.5).ok()) {
      return false;
    }
  }
  auto pc = [&](RelationId a, RelationId b, PcRelationType t) {
    return env->mkb.AddPcConstraint(MakeProjectionPc(a, b, {"A", "B", "C"}, t))
        .ok();
  };
  if (!pc({"IS2", "S1"}, {"IS3", "S2"}, PcRelationType::kSubset) ||
      !pc({"IS3", "S2"}, {"IS4", "S3"}, PcRelationType::kSubset) ||
      !pc({"IS4", "S3"}, {"IS1", "R2"}, PcRelationType::kEquivalent) ||
      !pc({"IS4", "S3"}, {"IS5", "S4"}, PcRelationType::kSubset) ||
      !pc({"IS5", "S4"}, {"IS6", "S5"}, PcRelationType::kSubset)) {
    return false;
  }
  env->mkb.stats().set_join_selectivity(0.005);
  auto view = ParseViewDefinition(
      "CREATE VIEW V AS SELECT R2.A (AR=true), R2.B (AR=true), R2.C (AR=true) "
      "FROM R1, R2 (RR=true) "
      "WHERE (R1.K = R2.A) (CR=true) AND (R2.B > 5) (CR=true)");
  if (!view.ok()) return false;
  env->view = view.value();
  // Delta-native synchronization: candidates are filtered on provenance
  // and only the five kept single-replacement rewritings materialize.
  ViewSynchronizer synchronizer(env->mkb);
  auto sync = synchronizer.SynchronizeCandidates(
      env->view, SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}));
  if (!sync.ok()) return false;
  for (RewriteCandidate& c : sync->candidates) {
    if (c.replacements.size() == 1) {
      env->rewritings.push_back(std::move(c).ToRewriting());
    }
  }
  return env->rewritings.size() == 5;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("%s", Banner("Experiment 5 / Table 5: workload model M1").c_str());

  // Optional --deadline_ms= / EVE_DEADLINE_MS governance, polled between
  // sections; unlimited (and stdout byte-identical) when unset.
  const ExecContext& ctx = ExperimentContext(argc, argv);

  Environment env;
  if (!Build(&env)) {
    std::fprintf(stderr, "environment construction failed\n");
    return 1;
  }
  ExitIfDeadline(ctx.CheckNow());
  QcParameters params;  // rho_quality = 0.9, rho_cost = 0.1 (Table 5 uses
                        // the case-1 setting of Experiment 4).
  CostModelOptions cost;
  cost.io_policy = IoBoundPolicy::kUpper;
  cost.block.block_bytes = 1000;

  // Per-update cost of an update at R1 (as in Table 4) and the M1 update
  // count of the replacement relation (1 update per 100 tuples).
  struct Row {
    std::string name;
    double dd;
    double per_update;
    double updates;
    double total;
  };
  std::vector<Row> rows;
  for (const Rewriting& rw : env.rewritings) {
    Row row;
    row.name = rw.replacements[0].replacement.relation;
    const auto q = EstimateQuality(env.view, rw, env.mkb, params);
    if (!q.ok()) return 1;
    row.dd = q->dd;
    const auto input = BuildCostInput(rw.definition, env.mkb);
    if (!input.ok()) return 1;
    const auto cf = SingleUpdateCost(input.value(), 0, cost);
    if (!cf.ok()) return 1;
    row.per_update = cf->Weighted(params);
    const auto stats = env.mkb.stats().Get(rw.replacements[0].replacement);
    if (!stats.ok()) return 1;
    row.updates = static_cast<double>(stats->cardinality) / 100.0;
    row.total = row.per_update * row.updates;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });

  std::vector<double> totals;
  for (const Row& r : rows) totals.push_back(r.total);
  const std::vector<double> normalized = NormalizeCosts(totals);

  TablePrinter table({"Rewriting", "DD", "Cost/update", "#updates",
                      "Total cost", "Norm. (exact)", "Norm. (paper)",
                      "QC (exact)", "QC (paper)", "Rating"});
  std::vector<double> qc_exact;
  const double paper_norm[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  for (size_t i = 0; i < rows.size(); ++i) {
    qc_exact.push_back(1.0 - (0.9 * rows[i].dd + 0.1 * normalized[i]));
  }
  std::vector<int> rating(rows.size(), 1);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < rows.size(); ++j) {
      if (qc_exact[j] > qc_exact[i]) rating[i] += 1;
    }
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const double qc_paper = 1.0 - (0.9 * rows[i].dd + 0.1 * paper_norm[i]);
    table.AddRow({StrFormat("V%zu (by %s)", i + 1, rows[i].name.c_str()),
                  FormatDouble(rows[i].dd, 4),
                  FormatDouble(rows[i].per_update, 1),
                  FormatDouble(rows[i].updates, 0),
                  FormatDouble(rows[i].total, 0),
                  FormatDouble(normalized[i], 4),
                  FormatDouble(paper_norm[i], 2),
                  FormatDouble(qc_exact[i], 5), FormatDouble(qc_paper, 5),
                  FormatDouble(rating[i])});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper Table 5 reports #updates 20/30/40/50/60 and keeps Table 4's\n"
      "normalized costs and QC scores.  The exact normalization differs\n"
      "(see header), but the RANKING is identical either way:\n"
      "V3 > V2 > V1 > V4 > V5 -- the paper's conclusion holds.\n");
  return 0;
}
