// Experiment 4 (paper §7.4, Tables 3-4, Figure 15): ranking of the legal
// rewritings that replace the deleted relation R2 (4000 tuples) by one of
// S1..S5 (2000..6000 tuples), under three quality/cost trade-offs.
//
// Environment (Table 3): the containment chain S1 c S2 c S3 = R2 c S4 c S5
// is declared pairwise in the MKB; the view synchronizer derives the direct
// replacements transitively.  System parameters per the paper:
// w = (0.7, 0.3), rho_D = (0.5, 0.5), rho_attr/ext = (0.7, 0.3),
// unit costs (0.1, 0.7, 0.2), js = 0.005, sigma = 0.5; cost of a single
// data update at R1; Eq. 33 upper I/O bound (see EXPERIMENTS.md for the
// lower/upper discrepancy between the paper's experiments).
//
// Note on the paper's Table 4: the DD column rows V4/V5 print 0.027/0.045,
// but the QC column is only consistent with DD = 0.030/0.050
// (= rho_ext * DD_ext with DD_ext = 0.10 / 0.1667).  This harness prints
// the self-consistent values; every QC score then matches the paper's.

#include <cstdio>
#include <map>

#include "bench_util/experiment_common.h"
#include "bench_util/table_printer.h"
#include "common/str_util.h"
#include "esql/parser.h"
#include "misd/mkb.h"
#include "qc/quality.h"
#include "qc/ranking.h"
#include "synch/synchronizer.h"

using namespace eve;

namespace {

struct Environment {
  MetaKnowledgeBase mkb;
  ViewDefinition view;
  std::vector<Rewriting> rewritings;  // V1..V5, keyed by replacement S1..S5.
};

bool Build(Environment* env) {
  const Schema abc({Attribute::Make("A", DataType::kInt64, 34),
                    Attribute::Make("B", DataType::kInt64, 33),
                    Attribute::Make("C", DataType::kInt64, 33)});
  const Schema r1({Attribute::Make("K", DataType::kInt64, 100)});
  if (!env->mkb.RegisterRelationWithStats({"IS0", "R1"}, r1, 400, 0.5).ok() ||
      !env->mkb.RegisterRelationWithStats({"IS1", "R2"}, abc, 4000, 0.5).ok()) {
    return false;
  }
  const int64_t cards[] = {2000, 3000, 4000, 5000, 6000};
  for (int i = 0; i < 5; ++i) {
    const RelationId id{"IS" + std::to_string(i + 2), "S" + std::to_string(i + 1)};
    if (!env->mkb.RegisterRelationWithStats(id, abc, cards[i], 0.5).ok()) {
      return false;
    }
  }
  auto pc = [&](RelationId a, RelationId b, PcRelationType t) {
    return env->mkb.AddPcConstraint(MakeProjectionPc(a, b, {"A", "B", "C"}, t))
        .ok();
  };
  if (!pc({"IS2", "S1"}, {"IS3", "S2"}, PcRelationType::kSubset) ||
      !pc({"IS3", "S2"}, {"IS4", "S3"}, PcRelationType::kSubset) ||
      !pc({"IS4", "S3"}, {"IS1", "R2"}, PcRelationType::kEquivalent) ||
      !pc({"IS4", "S3"}, {"IS5", "S4"}, PcRelationType::kSubset) ||
      !pc({"IS5", "S4"}, {"IS6", "S5"}, PcRelationType::kSubset)) {
    return false;
  }
  env->mkb.stats().set_join_selectivity(0.005);

  auto view = ParseViewDefinition(
      "CREATE VIEW V AS SELECT R2.A (AR=true), R2.B (AR=true), R2.C (AR=true) "
      "FROM R1, R2 (RR=true) "
      "WHERE (R1.K = R2.A) (CR=true) AND (R2.B > 5) (CR=true)");
  if (!view.ok()) return false;
  env->view = view.value();

  // Delta-native synchronization: candidates are filtered on provenance
  // and only the five kept single-replacement rewritings materialize.
  ViewSynchronizer synchronizer(env->mkb);
  auto sync = synchronizer.SynchronizeCandidates(
      env->view, SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}));
  if (!sync.ok() || !sync->affected) return false;
  for (RewriteCandidate& c : sync->candidates) {
    if (c.replacements.size() == 1) {
      env->rewritings.push_back(std::move(c).ToRewriting());
    }
  }
  return env->rewritings.size() == 5;
}

// The paper costs a single update originating at R1 (Eq. 33 upper I/O
// bound; see EXPERIMENTS.md).
double R1OriginCost(const MetaKnowledgeBase& mkb, const ViewDefinition& def,
                    const QcParameters& params) {
  CostModelOptions cost;
  cost.io_policy = IoBoundPolicy::kUpper;
  cost.block.block_bytes = 1000;
  const auto input = BuildCostInput(def, mkb);
  if (!input.ok()) return -1;
  const auto cf = SingleUpdateCost(input.value(), 0, cost);  // R1 first.
  return cf.ok() ? cf->Weighted(params) : -1;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("%s",
              Banner("Experiment 4 / Tables 3-4, Figure 15: relation cardinality").c_str());

  // Optional --deadline_ms= / EVE_DEADLINE_MS governance, polled between
  // sections; unlimited (and stdout byte-identical) when unset.
  const ExecContext& ctx = ExperimentContext(argc, argv);

  Environment env;
  if (!Build(&env)) {
    std::fprintf(stderr, "environment construction failed\n");
    return 1;
  }
  ExitIfDeadline(ctx.CheckNow());

  std::printf("Table 3 environment: R2(A,B,C) 4000 tuples; replacements\n"
              "S1..S5 = 2000/3000/4000/5000/6000; S1 c S2 c S3 = R2 c S4 c S5\n\n");

  // --- Table 4 (case 1: rho_quality = 0.9, rho_cost = 0.1) -------------------
  QcParameters params;
  TablePrinter table({"Rewriting", "DD_attr", "DD_ext", "DD",
                      "Cost (Norm. Cost)", "QC(Vi)", "Rating"});
  std::vector<double> costs;
  std::map<std::string, QualityBreakdown> quality_of;
  std::map<std::string, double> cost_of;
  for (const Rewriting& rw : env.rewritings) {
    const std::string name = rw.replacements[0].replacement.relation;
    const auto q = EstimateQuality(env.view, rw, env.mkb, params);
    if (!q.ok()) return 1;
    quality_of[name] = q.value();
    cost_of[name] = R1OriginCost(env.mkb, rw.definition, params);
  }
  for (int i = 1; i <= 5; ++i) costs.push_back(cost_of["S" + std::to_string(i)]);
  const std::vector<double> normalized = NormalizeCosts(costs);

  struct Row {
    std::string name;
    double qc;
  };
  std::vector<Row> rows;
  for (int i = 1; i <= 5; ++i) {
    const std::string name = "S" + std::to_string(i);
    const QualityBreakdown& q = quality_of[name];
    const double qc = 1.0 - (0.9 * q.dd + 0.1 * normalized[i - 1]);
    rows.push_back(Row{name, qc});
  }
  std::vector<int> rating(5, 1);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (rows[j].qc > rows[i].qc) rating[i] += 1;
    }
  }
  for (int i = 0; i < 5; ++i) {
    const std::string name = rows[i].name;
    const QualityBreakdown& q = quality_of[name];
    table.AddRow({StrFormat("V%d (by %s)", i + 1, name.c_str()),
                  FormatDouble(q.dd_attr, 4), FormatDouble(q.dd_ext, 4),
                  FormatDouble(q.dd, 4),
                  StrFormat("%s (%s)", FormatDouble(costs[i], 1).c_str(),
                            FormatDouble(normalized[i], 4).c_str()),
                  FormatDouble(rows[i].qc, 5), FormatDouble(rating[i])});
  }
  std::printf("Table 4 (case 1: rho_quality=0.9, rho_cost=0.1):\n%s\n",
              table.Render().c_str());
  std::printf("Paper's row values: DD 0.075/0.0375/0/0.030*/0.050*, cost\n"
              "842.3/1193.3/1544.3/1895.3/2246.3, QC 0.9325/0.94125/0.95/\n"
              "0.898/0.855, rating 3/2/1/4/5 (* = corrected, see header).\n\n");

  // --- Figure 15: three trade-off cases ----------------------------------------
  ExitIfDeadline(ctx.CheckNow());
  for (const auto& [label, rq, rc] :
       std::vector<std::tuple<const char*, double, double>>{
           {"Case 1 (qual 0.9, cost 0.1)", 0.9, 0.1},
           {"Case 2 (qual 0.75, cost 0.25)", 0.75, 0.25},
           {"Case 3 (qual 0.5, cost 0.5)", 0.5, 0.5}}) {
    std::vector<std::string> x_labels;
    std::vector<double> qcs;
    std::string best;
    double best_qc = -1;
    for (int i = 1; i <= 5; ++i) {
      const std::string name = "S" + std::to_string(i);
      const double qc =
          1.0 - (rq * quality_of[name].dd + rc * normalized[i - 1]);
      x_labels.push_back(StrFormat("V%d", i));
      qcs.push_back(qc);
      if (qc > best_qc) {
        best_qc = qc;
        best = StrFormat("V%d (by %s)", i, name.c_str());
      }
    }
    std::printf("%s\n", RenderSeries(std::string("Figure 15, ") + label,
                                     x_labels, qcs)
                            .c_str());
    std::printf("  -> best legal rewriting: %s\n\n", best.c_str());
  }

  std::printf(
      "Findings (paper §7.4): quality-heavy weighting picks V3 (the\n"
      "equivalent replacement); cost-aware weightings shift the choice to\n"
      "V1 (the smallest); among superset replacements V3 > V4 > V5 under\n"
      "every setting.\n");
  return 0;
}
