// Experiment 2 (paper §7.2, Figure 13 + Tables 1-2): relationship between
// the number of information sources in a view and the three maintenance
// cost factors.
//
// Setup: six relations (|R| = 400, s = 100B, sigma = 0.5, js = 0.005,
// bfr = 10) distributed over m = 1..6 sites in every way listed in Table 2;
// per-update cost factors are averaged over the distributions of each m
// (updates originate at each site with equal likelihood, spread evenly over
// the site's relations).
//
// Paper series (per update): CF_M 3 .. 11, CF_T 800 .. 3600 bytes, CF_IO
// constant 31 -- this harness reproduces them exactly.

#include <cstdio>

#include "bench_util/distributions.h"
#include "bench_util/experiment_common.h"
#include "bench_util/table_printer.h"
#include "common/str_util.h"

using namespace eve;

int main(int argc, char** argv) {
  std::printf("%s", Banner("Experiment 2 / Figure 13: #sites vs cost factors").c_str());

  const UniformParams params;  // Table 1 defaults.
  const CostModelOptions options = MakeUniformOptions(params);
  // The sweep is parallel across distributions; results are reduced in
  // input order, so stdout is identical for every thread count (the count
  // itself goes to stderr to keep it that way).
  const int threads = SweepThreads(argc, argv);
  std::fprintf(stderr, "[sweep threads: %d]\n", threads);
  // Optional --deadline_ms= / EVE_DEADLINE_MS governance; unlimited (and
  // stdout byte-identical) when unset.
  const ExecContext& ctx = ExperimentContext(argc, argv);

  std::vector<std::string> x_labels;
  std::vector<double> msgs, bytes, ios;

  TablePrinter table({"sites (m)", "#distributions", "CF_M/update",
                      "CF_T/update (bytes)", "CF_IO/update"});
  for (int m = 1; m <= params.num_relations; ++m) {
    const std::vector<std::vector<int>> dists =
        Compositions(params.num_relations, m);
    const auto cfs =
        SweepSiteAveragedUpdateCost(dists, params, options, threads, ctx);
    if (!cfs.ok()) {
      ExitIfDeadline(cfs.status());
      std::fprintf(stderr, "%s\n", cfs.status().ToString().c_str());
      return 1;
    }
    CostFactors sum;
    for (const CostFactors& cf : *cfs) sum += cf;
    const int count = static_cast<int>(dists.size());
    const CostFactors avg = sum * (1.0 / count);
    table.AddRow({FormatDouble(m), FormatDouble(count),
                  FormatDouble(avg.messages, 2), FormatDouble(avg.bytes, 1),
                  FormatDouble(avg.ios, 1)});
    x_labels.push_back(StrFormat("m=%d", m));
    msgs.push_back(avg.messages);
    bytes.push_back(avg.bytes);
    ios.push_back(avg.ios);
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("%s\n", RenderSeries("Fig 13(a): messages exchanged", x_labels, msgs).c_str());
  std::printf("%s\n", RenderSeries("Fig 13(b): bytes transferred", x_labels, bytes).c_str());
  std::printf("%s\n", RenderSeries("Fig 13(c): I/O operations", x_labels, ios).c_str());

  std::printf(
      "Finding (paper §7.2): messages and bytes grow with the number of\n"
      "sites; I/O stays constant (the same joins run wherever the relations\n"
      "live).  Minimizing the number of ISs in a rewriting lowers cost.\n");
  return 0;
}
