// Google-benchmark micro suite: throughput of the library's core paths.
//   * E-SQL parsing (lexer + parser + validation)
//   * view execution (hash joins over the in-memory engine), optimized
//     row-id engine vs the seed's reference executor
//   * prepared-plan replay (PrepareView once + ExecutePrepared per round,
//     the PlanCache path, and one shared plan across benchmark threads)
//   * serving-layer throughput (ServingFrontEnd round trips across
//     benchmark threads with concurrent schema changes) and the cost of
//     one epoch turnover (SystemSnapshot capture + publish)
//   * extent comparison over cached per-relation tuple-hash columns
//   * parallel scenario sweeps through the analytic cost model
//   * transitive PC-edge closure, memoized vs uncached
//   * rewriting generation (synchronizer, transitive PC discovery)
//   * QC ranking (quality estimation + cost model + normalization)
//   * incremental maintenance of one update (Algorithm 1 simulator)
//
// Results are additionally written to BENCH_micro.json (ns/op per
// benchmark; see bench/README.md) so the perf trajectory is tracked
// across PRs.  Set EVE_BENCH_JSON_PATH to change the output location.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/distributions.h"
#include "bench_util/experiment_common.h"
#include "bench_util/scenario.h"
#include "common/random.h"
#include "esql/parser.h"
#include "algebra/executor.h"
#include "eve/eve_system.h"
#include "serve/frontend.h"
#include "maintenance/maintainer.h"
#include "misd/mkb.h"
#include "plan/plan_cache.h"
#include "policy/evolution_policy.h"
#include "qc/ranking.h"
#include "space/information_space.h"
#include "storage/column_kernel.h"
#include "storage/generator.h"
#include "storage/hash_index.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

const char* kViewText =
    "CREATE VIEW AsiaCustomer (VE = subset) AS "
    "SELECT C.Name (AR=true), C.Address (AD=true, AR=true), "
    "C.Phone (AD=true, AR=true), F.Dest (AD=true) "
    "FROM Customer C (RR=true), FlightRes F (RD=true) "
    "WHERE (C.Name = F.PName) (CR=true) AND (F.Dest = 7) (CD=true)";

void BM_ParseView(benchmark::State& state) {
  for (auto _ : state) {
    auto view = ParseViewDefinition(kViewText);
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_ParseView);

struct ExecFixture {
  InformationSpace space;
  ViewDefinition view;

  explicit ExecFixture(int64_t cardinality) {
    Random rng(17);
    GeneratorOptions gen;
    gen.cardinality = cardinality;
    gen.num_attributes = 2;
    gen.key_domain = cardinality / 2;
    (void)space.AddRelation("IS1", GenerateRelation("R", gen, &rng));
    (void)space.AddRelation("IS2", GenerateRelation("S", gen, &rng));
    view = ParseViewDefinition(
               "CREATE VIEW V AS SELECT R.A, R.B, S.B AS SB FROM R, S "
               "WHERE R.A = S.A")
               .value();
  }
};

void BM_ExecuteJoinView(benchmark::State& state) {
  ExecFixture fixture(state.range(0));
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = ExecuteView(fixture.view, fixture.space);
    tuples += result.ok() ? result->cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ExecuteJoinView)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ExecuteJoinView_Baseline(benchmark::State& state) {
  ExecFixture fixture(state.range(0));
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = ExecuteViewReference(fixture.view, fixture.space);
    tuples += result.ok() ? result->cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ExecuteJoinView_Baseline)->Arg(256)->Arg(1024)->Arg(4096);

// Multi-join view: a 4-way chain with a local selection, the shape where
// join reordering, selection pushdown, and row-id joins dominate.  The
// FROM order is deliberately worst-case: the largest relation first.
struct MultiJoinFixture {
  InformationSpace space;
  ViewDefinition view;

  explicit MultiJoinFixture(int64_t cardinality) {
    Random rng(29);
    GeneratorOptions gen;
    gen.num_attributes = 2;
    gen.value_domain = 1000;
    const struct {
      const char* site;
      const char* name;
      int64_t card;
    } rels[] = {{"IS1", "R", cardinality * 4},
                {"IS2", "S", cardinality},
                {"IS3", "T", cardinality / 2},
                {"IS4", "U", cardinality / 4}};
    for (const auto& r : rels) {
      gen.cardinality = r.card;
      gen.key_domain = std::max<int64_t>(4, r.card / 2);
      (void)space.AddRelation(r.site, GenerateRelation(r.name, gen, &rng));
    }
    view = ParseViewDefinition(
               "CREATE VIEW V AS SELECT R.A, S.B AS SB, T.B AS TB, U.B AS UB "
               "FROM R, S, T, U WHERE (R.A = S.A) AND (S.A = T.A) AND "
               "(T.A = U.A) AND (R.B >= 500)")
               .value();
  }
};

void BM_ExecuteMultiJoinView(benchmark::State& state) {
  MultiJoinFixture fixture(state.range(0));
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = ExecuteView(fixture.view, fixture.space);
    tuples += result.ok() ? result->cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ExecuteMultiJoinView)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ExecuteMultiJoinView_Baseline(benchmark::State& state) {
  MultiJoinFixture fixture(state.range(0));
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = ExecuteViewReference(fixture.view, fixture.space);
    tuples += result.ok() ? result->cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ExecuteMultiJoinView_Baseline)->Arg(256)->Arg(1024)->Arg(4096);

// Plan-reuse replay loop: prepare once, execute per round -- the shape of
// the exp1-exp5 scenario sweeps.  Compare against BM_ExecuteMultiJoinView
// (same work with per-call planning) for the amortization win.
void BM_ExecuteMultiJoinView_Prepared(benchmark::State& state) {
  MultiJoinFixture fixture(state.range(0));
  auto plan = PrepareView(fixture.view, fixture.space).value();
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = ExecutePrepared(*plan);
    tuples += result.ok() ? result->cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ExecuteMultiJoinView_Prepared)->Arg(256)->Arg(1024)->Arg(4096);

// Governance overhead pair: the same prepared replay, once with the
// default unlimited context (compile-time no-op) and once under an
// ExecContext whose row budget is active but never binds.  The delta is
// the full price of amortized budget/deadline accounting on the hot
// execution path; the regression gate keeps it under 2x, the target is
// within 5%.
void BM_ExecutePreparedUngoverned(benchmark::State& state) {
  MultiJoinFixture fixture(state.range(0));
  auto plan = PrepareView(fixture.view, fixture.space).value();
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = ExecutePrepared(*plan);
    tuples += result.ok() ? result->cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ExecutePreparedUngoverned)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ExecutePreparedGoverned(benchmark::State& state) {
  MultiJoinFixture fixture(state.range(0));
  auto plan = PrepareView(fixture.view, fixture.space).value();
  ExecContext ctx;
  ctx.WithRowBudget(int64_t{1} << 60);  // limited() == true, never binds.
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = ExecutePrepared(*plan, ctx);
    tuples += result.ok() ? result->cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ExecutePreparedGoverned)->Arg(256)->Arg(1024)->Arg(4096);

// Planning alone (resolution, binding, pushdown, join ordering): the cost
// that plan reuse amortizes away.
void BM_PrepareMultiJoinView(benchmark::State& state) {
  MultiJoinFixture fixture(state.range(0));
  for (auto _ : state) {
    auto plan = PrepareView(fixture.view, fixture.space);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PrepareMultiJoinView)->Arg(256)->Arg(1024)->Arg(4096);

// The PlanCache replay path: Get() revalidates relation versions on every
// round, then executes the cached plan.  The gap to _Prepared is the price
// of automatic invalidation.
void BM_ExecuteMultiJoinView_PlanCache(benchmark::State& state) {
  MultiJoinFixture fixture(state.range(0));
  PlanCache cache;
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = cache.Execute(fixture.view, fixture.space);
    tuples += result.ok() ? result->cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ExecuteMultiJoinView_PlanCache)->Arg(256)->Arg(1024)->Arg(4096);

// One prepared plan executed from N benchmark threads concurrently: the
// thread-safety contract of ExecutePrepared (const plan, internally
// synchronized per-Relation caches) under real contention.  The fixture is
// shared across the ThreadRange runs; the plan stays valid throughout
// because nothing mutates the relations.
struct SharedPreparedState {
  MultiJoinFixture fixture{1024};
  std::shared_ptr<const PreparedView> plan =
      PrepareView(fixture.view, fixture.space).value();
};

SharedPreparedState& GetSharedPreparedState() {
  static SharedPreparedState* state = new SharedPreparedState();
  return *state;
}

void BM_ExecutePreparedConcurrent(benchmark::State& state) {
  SharedPreparedState& shared = GetSharedPreparedState();
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = ExecutePrepared(*shared.plan);
    tuples += result.ok() ? result->cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ExecutePreparedConcurrent)->ThreadRange(1, 4)->UseRealTime();

// Serving-layer throughput: N benchmark threads doing synchronous
// QueryView round trips through one shared ServingFrontEnd (admission
// queue -> worker pool -> PlanCache against the pinned epoch), while
// thread 0 interleaves schema changes so epochs actually turn over under
// the readers.  The renamed attribute (C) is not referenced by the view,
// so every flip runs the full synchronization + snapshot publication
// path without altering the served result -- the measured work per
// request stays comparable across thread counts.
struct SharedServeState {
  EveSystem system;
  std::unique_ptr<ServingFrontEnd> frontend;
  bool renamed = false;  ///< Only touched by benchmark thread 0.

  SharedServeState() {
    Random rng(61);
    GeneratorOptions gen;
    gen.cardinality = 1024;
    gen.num_attributes = 3;
    gen.key_domain = 512;
    (void)system.RegisterRelation("IS1", GenerateRelation("R", gen, &rng));
    (void)system.RegisterRelation("IS2", GenerateRelation("S", gen, &rng));
    (void)system.DefineView(
        "CREATE VIEW V AS SELECT R.A, R.B, S.B AS SB FROM R, S "
        "WHERE R.A = S.A");
    frontend = std::make_unique<ServingFrontEnd>(system);
  }
};

SharedServeState& GetSharedServeState() {
  static SharedServeState* state = new SharedServeState();
  return *state;
}

void BM_ServeThroughput(benchmark::State& state) {
  SharedServeState& shared = GetSharedServeState();
  int64_t tuples = 0;
  int64_t round = 0;
  for (auto _ : state) {
    if (state.thread_index() == 0 && (++round % 64) == 0) {
      // One schema-change epoch turnover per 64 requests of thread 0
      // (EveSystem mutations are single-writer, so only this thread
      // mutates).
      const std::string from = shared.renamed ? "C2" : "C";
      const std::string to = shared.renamed ? "C" : "C2";
      shared.renamed = !shared.renamed;
      SchemaChange change{RenameAttribute{RelationId{"IS1", "R"}, from, to}};
      auto report = shared.system.NotifySchemaChange(change);
      benchmark::DoNotOptimize(report);
    }
    ServeResult result = shared.frontend->QueryView("V");
    tuples += result.status.ok() ? result.relation.cardinality() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(tuples);
}
BENCHMARK(BM_ServeThroughput)->ThreadRange(1, 32)->UseRealTime();

// Cost of one epoch turnover -- SystemSnapshot::Capture (one CoW Relation
// copy per site relation, O(total columns), never O(rows)) plus the
// atomic Publish -- as a function of how many relations the space hosts.
void BM_SnapshotSwap(benchmark::State& state) {
  EveSystem system;
  Random rng(67);
  GeneratorOptions gen;
  gen.cardinality = 512;
  gen.num_attributes = 2;
  gen.key_domain = 256;
  for (int64_t r = 0; r < state.range(0); ++r) {
    (void)system.RegisterRelation(
        "IS1", GenerateRelation("R" + std::to_string(r), gen, &rng));
  }
  int64_t swaps = 0;
  for (auto _ : state) {
    Status status = system.RefreshSnapshot();
    benchmark::DoNotOptimize(status);
    ++swaps;
  }
  state.SetItemsProcessed(swaps);
}
BENCHMARK(BM_SnapshotSwap)->Arg(4)->Arg(64);

struct SynchFixture {
  MetaKnowledgeBase mkb;
  ViewDefinition view;
  SchemaChange change{DeleteRelation{RelationId{"IS1", "R2"}}};

  SynchFixture() {
    const Schema abc({Attribute::Make("A", DataType::kInt64, 34),
                      Attribute::Make("B", DataType::kInt64, 33),
                      Attribute::Make("C", DataType::kInt64, 33)});
    const Schema r1({Attribute::Make("K", DataType::kInt64, 100)});
    (void)mkb.RegisterRelationWithStats({"IS0", "R1"}, r1, 400, 0.5);
    (void)mkb.RegisterRelationWithStats({"IS1", "R2"}, abc, 4000, 0.5);
    for (int i = 0; i < 5; ++i) {
      (void)mkb.RegisterRelationWithStats(
          {"IS" + std::to_string(i + 2), "S" + std::to_string(i + 1)}, abc,
          2000 + 1000 * i, 0.5);
    }
    auto pc = [&](RelationId a, RelationId b, PcRelationType t) {
      (void)mkb.AddPcConstraint(MakeProjectionPc(a, b, {"A", "B", "C"}, t));
    };
    pc({"IS2", "S1"}, {"IS3", "S2"}, PcRelationType::kSubset);
    pc({"IS3", "S2"}, {"IS4", "S3"}, PcRelationType::kSubset);
    pc({"IS4", "S3"}, {"IS1", "R2"}, PcRelationType::kEquivalent);
    pc({"IS4", "S3"}, {"IS5", "S4"}, PcRelationType::kSubset);
    pc({"IS5", "S4"}, {"IS6", "S5"}, PcRelationType::kSubset);
    view = ParseViewDefinition(
               "CREATE VIEW V AS SELECT R2.A (AR=true), R2.B (AR=true), "
               "R2.C (AR=true) FROM R1, R2 (RR=true) "
               "WHERE (R1.K = R2.A) (CR=true) AND (R2.B > 5) (CR=true)")
               .value();
  }
};

void BM_SynchronizeView(benchmark::State& state) {
  SynchFixture fixture;
  ViewSynchronizer synchronizer(fixture.mkb);
  for (auto _ : state) {
    auto result = synchronizer.Synchronize(fixture.view, fixture.change);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SynchronizeView);

// Wide delete-change fan-out: a 17-attribute view over a deleted relation
// with 40 partial-map PC replacements (28 covering the first half of the
// attributes, 12 the second) and a join constraint between every target
// pair.  The enumeration attempts ~1600 CVS pair substitutions -- most
// rejected because both targets cover the same half -- of which ~700
// succeed and the 256-candidate cap keeps a fraction.  This is the shape
// where the copy-on-write candidate representation pays: rejected,
// deduplicated, and over-cap candidates never touch a materialized
// ViewDefinition, while the eager oracle (the _Eager variant) deep-copies
// the whole 17-select definition up front for every single attempt.
struct DeleteFanoutFixture {
  MetaKnowledgeBase mkb;
  ViewDefinition view;
  SchemaChange change{DeleteRelation{RelationId{"IS0", "R"}}};
  static constexpr int kTargets = 40;
  static constexpr int kFirstHalfTargets = 28;
  static constexpr int kSideRelations = 4;  ///< Untouched wide FROM items.

  DeleteFanoutFixture() {
    auto int_schema = [](const std::vector<std::string>& names) {
      std::vector<Attribute> attrs;
      for (const std::string& n : names) {
        attrs.push_back(Attribute::Make(n, DataType::kInt64, 50));
      }
      return Schema(std::move(attrs));
    };
    (void)mkb.RegisterRelationWithStats(
        {"IS0", "R"}, int_schema({"K", "X0", "X1", "X2", "X3"}), 10000, 0.5);
    // The side relations feed most of the view's interface; rewriting
    // candidates never touch them (the common case: a wide warehouse view
    // loses one of many sources).
    for (int s = 0; s < kSideRelations; ++s) {
      (void)mkb.RegisterRelationWithStats(
          {"ISS" + std::to_string(s), "S" + std::to_string(s)},
          int_schema({"KA", "B0", "B1", "B2"}), 8000, 0.5);
    }
    // Each target covers K plus one half of the X attributes; only a pair
    // of complementary targets can substitute R in full.
    for (int i = 0; i < kTargets; ++i) {
      const bool first_half = i < kFirstHalfTargets;
      const std::vector<std::string> attrs =
          first_half ? std::vector<std::string>{"K", "X0", "X1"}
                     : std::vector<std::string>{"K", "X2", "X3"};
      const RelationId id{"IS" + std::to_string(i + 1),
                          "U" + std::to_string(i)};
      (void)mkb.RegisterRelationWithStats(id, int_schema(attrs),
                                          4000 + 100 * i, 0.5);
      (void)mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS0", "R"}, id,
                                                 attrs,
                                                 PcRelationType::kEquivalent));
    }
    for (int i = 0; i < kTargets; ++i) {
      for (int j = i + 1; j < kTargets; ++j) {
        JoinConstraint jc;
        jc.left = RelationId{"IS" + std::to_string(i + 1),
                             "U" + std::to_string(i)};
        jc.right = RelationId{"IS" + std::to_string(j + 1),
                              "U" + std::to_string(j)};
        jc.condition.Add(PrimitiveClause::AttrAttr(
            RelAttr{"U" + std::to_string(i), "K"}, CompOp::kEqual,
            RelAttr{"U" + std::to_string(j), "K"}));
        (void)mkb.AddJoinConstraint(jc);
      }
    }
    std::string text = "CREATE VIEW W AS SELECT R.K (AR=true)";
    for (int a = 0; a < 4; ++a) {
      text += ", R.X" + std::to_string(a) + " (AD=true, AR=true)";
    }
    for (int s = 0; s < kSideRelations; ++s) {
      for (int b = 0; b < 3; ++b) {
        text += ", S" + std::to_string(s) + ".B" + std::to_string(b) + " AS S" +
                std::to_string(s) + "B" + std::to_string(b);
      }
    }
    text += " FROM R (RR=true)";
    for (int s = 0; s < kSideRelations; ++s) text += ", S" + std::to_string(s);
    text += " WHERE (R.K = S0.KA) (CR=true)";
    for (int s = 1; s < kSideRelations; ++s) {
      text += " AND (S" + std::to_string(s - 1) + ".KA = S" +
              std::to_string(s) + ".KA)";
    }
    view = ParseViewDefinition(text).value();
  }
};

void BM_SynchronizeDeleteFanout(benchmark::State& state) {
  DeleteFanoutFixture fixture;
  ViewSynchronizer synchronizer(fixture.mkb);
  int64_t rewritings = 0;
  for (auto _ : state) {
    auto result = synchronizer.Synchronize(fixture.view, fixture.change);
    rewritings += result.ok() ? static_cast<int64_t>(result->rewritings.size())
                              : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(rewritings);
}
BENCHMARK(BM_SynchronizeDeleteFanout);

void BM_SynchronizeDeleteFanout_Eager(benchmark::State& state) {
  DeleteFanoutFixture fixture;
  SynchronizerOptions options;
  options.use_delta_enumeration = false;
  ViewSynchronizer synchronizer(fixture.mkb, options);
  int64_t rewritings = 0;
  for (auto _ : state) {
    auto result = synchronizer.Synchronize(fixture.view, fixture.change);
    rewritings += result.ok() ? static_cast<int64_t>(result->rewritings.size())
                              : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(rewritings);
}
BENCHMARK(BM_SynchronizeDeleteFanout_Eager);

// Transitive PC-edge closure on the SynchFixture constraint chain: the
// memoized path (one map lookup after warm-up) vs the seed's uncached BFS
// that rescans the constraint store per node.
void BM_TransitiveClosure(benchmark::State& state) {
  SynchFixture fixture;
  const RelationId source{"IS1", "R2"};
  for (auto _ : state) {
    const auto& edges = fixture.mkb.PcEdgesFromTransitive(source, 4);
    benchmark::DoNotOptimize(&edges);
  }
}
BENCHMARK(BM_TransitiveClosure);

void BM_TransitiveClosure_Uncached(benchmark::State& state) {
  SynchFixture fixture;
  const RelationId source{"IS1", "R2"};
  for (auto _ : state) {
    auto edges = fixture.mkb.PcEdgesFromTransitiveUncached(source, 4);
    benchmark::DoNotOptimize(edges);
  }
}
BENCHMARK(BM_TransitiveClosure_Uncached);

void BM_QcRanking(benchmark::State& state) {
  SynchFixture fixture;
  ViewSynchronizer synchronizer(fixture.mkb);
  auto sync = synchronizer.Synchronize(fixture.view, fixture.change);
  QcModel model(QcParameters{}, CostModelOptions{}, WorkloadOptions{});
  for (auto _ : state) {
    auto ranking = model.Rank(fixture.view, sync->rewritings, fixture.mkb);
    benchmark::DoNotOptimize(ranking);
  }
}
BENCHMARK(BM_QcRanking);

// Rebuilds `rel` with every column forced into the legacy tagged layout.
// Relations normally promote to packed segments on append, so this is how
// the *_Packed benchmarks get their tagged baseline twin to measure
// against (it reproduces the pre-segment storage exactly, including the
// tag-uniform fast paths the old kernels had).
Relation ForceTagged(const Relation& rel) {
  std::vector<ColumnSegment> cols;
  cols.reserve(static_cast<size_t>(rel.width()));
  for (int c = 0; c < rel.width(); ++c) {
    std::vector<Value> values;
    values.reserve(static_cast<size_t>(rel.cardinality()));
    for (int64_t row = 0; row < rel.cardinality(); ++row) {
      values.push_back(rel.ValueAt(row, c));
    }
    cols.push_back(ColumnSegment::TaggedFromValues(std::move(values)));
  }
  return Relation::FromSegments(rel.name(), rel.schema(), std::move(cols));
}

// Value-representation benchmarks: Distinct() and hash-index builds are
// dominated by value hashing / equality over full tuples.  BM_Distinct
// keeps the historic tagged layout (the baseline); BM_Distinct_Packed runs
// the same workload over naturally promoted packed segments.  The relation
// mixes duplicates in (key_domain < cardinality) so dedup does real bucket
// work.
Relation DistinctBenchInput(int64_t cardinality) {
  Random rng(23);
  GeneratorOptions gen;
  gen.cardinality = cardinality;
  gen.num_attributes = 3;
  gen.key_domain = std::max<int64_t>(2, cardinality / 4);
  gen.value_domain = 64;
  return GenerateRelation("R", gen, &rng);
}

void BM_Distinct(benchmark::State& state) {
  Relation rel = ForceTagged(DistinctBenchInput(state.range(0)));
  int64_t rounds = 0;
  for (auto _ : state) {
    // Distinct() reuses the cached tuple-hash column, which is exactly the
    // warm path the sweeps hit.
    Relation distinct = rel.Distinct();
    benchmark::DoNotOptimize(distinct);
    ++rounds;
  }
  state.SetItemsProcessed(rounds * state.range(0));
}
BENCHMARK(BM_Distinct)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Distinct_Packed(benchmark::State& state) {
  Relation rel = DistinctBenchInput(state.range(0));
  int64_t rounds = 0;
  for (auto _ : state) {
    Relation distinct = rel.Distinct();
    benchmark::DoNotOptimize(distinct);
    ++rounds;
  }
  state.SetItemsProcessed(rounds * state.range(0));
}
BENCHMARK(BM_Distinct_Packed)->Arg(1024)->Arg(4096)->Arg(16384);

// Tuple hashing alone (the cold half of Distinct / SetEquals): the
// column-wise FNV mixing pass that builds the cached hash column.
void BM_TupleHashColumn(benchmark::State& state) {
  Random rng(31);
  GeneratorOptions gen;
  gen.cardinality = state.range(0);
  gen.num_attributes = 3;
  gen.key_domain = state.range(0) / 2;
  const Relation rel = GenerateRelation("R", gen, &rng);
  int64_t rounds = 0;
  for (auto _ : state) {
    std::vector<size_t> hashes = rel.ComputeTupleHashes();
    benchmark::DoNotOptimize(hashes.data());
    ++rounds;
  }
  state.SetItemsProcessed(rounds * state.range(0));
}
BENCHMARK(BM_TupleHashColumn)->Arg(4096);

// Columnar scan kernel: one mask-compare pass over a contiguous column
// plus the survivor count -- the primitive behind selection pushdown,
// residual filtering, and MeasureSelectivity.  BM_ColumnScan keeps the
// historic 16-byte tagged layout (the baseline); BM_ColumnScan_Packed
// scans the same data as a promoted vector<int64_t> segment.
Relation ColumnScanBenchInput(int64_t cardinality) {
  Random rng(47);
  GeneratorOptions gen;
  gen.cardinality = cardinality;
  gen.num_attributes = 2;
  gen.value_domain = 1000;
  return GenerateRelation("R", gen, &rng);
}

void ColumnScanLoop(benchmark::State& state, const Relation& rel) {
  // The AND-fold of a fixed predicate is idempotent (every pass compares
  // and writes all rows regardless of mask content), so the mask
  // initialization and the survivor count hoist out of the timed loop and
  // the measurement isolates the kernel itself.
  std::vector<uint8_t> mask(static_cast<size_t>(rel.cardinality()), 1);
  int64_t rounds = 0;
  for (auto _ : state) {
    AndCompareColumnConst(CompOp::kGreaterEqual, rel.Segment(1), Value(500),
                          mask.data());
    benchmark::DoNotOptimize(mask.data());
    benchmark::ClobberMemory();
    ++rounds;
  }
  int64_t hits = 0;
  for (const uint8_t m : mask) hits += m;
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(rounds * state.range(0));
}

void BM_ColumnScan(benchmark::State& state) {
  const Relation rel = ForceTagged(ColumnScanBenchInput(state.range(0)));
  ColumnScanLoop(state, rel);
}
BENCHMARK(BM_ColumnScan)->Arg(4096)->Arg(65536);

void BM_ColumnScan_Packed(benchmark::State& state) {
  const Relation rel = ColumnScanBenchInput(state.range(0));
  ColumnScanLoop(state, rel);
}
BENCHMARK(BM_ColumnScan_Packed)->Arg(4096)->Arg(65536);

// Multi-tuple erase: the maintenance delete sweeps remove a projected
// victim list from a view extent.  BM_ErasePerTuple is the historic
// one-full-scan-per-victim loop; BM_BatchedErase removes the same victims
// through one hash-bucketed scan + one compaction per column.
Relation EraseBenchInput(int64_t cardinality, std::vector<Tuple>* victims) {
  Random rng(53);
  GeneratorOptions gen;
  gen.cardinality = cardinality;
  gen.num_attributes = 2;
  gen.key_domain = cardinality;
  const Relation base = GenerateRelation("R", gen, &rng);
  for (int64_t row = 0; row < base.cardinality(); row += 8) {
    victims->push_back(base.TupleAt(row));
  }
  return base;
}

void BM_ErasePerTuple(benchmark::State& state) {
  std::vector<Tuple> victims;
  const Relation base = EraseBenchInput(state.range(0), &victims);
  int64_t rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Relation rel = base;
    state.ResumeTiming();
    int64_t removed = 0;
    for (const Tuple& t : victims) removed += rel.Erase(t);
    benchmark::DoNotOptimize(removed);
    ++rounds;
  }
  state.SetItemsProcessed(rounds * static_cast<int64_t>(victims.size()));
}
BENCHMARK(BM_ErasePerTuple)->Arg(4096);

void BM_BatchedErase(benchmark::State& state) {
  std::vector<Tuple> victims;
  const Relation base = EraseBenchInput(state.range(0), &victims);
  int64_t rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Relation rel = base;
    state.ResumeTiming();
    const int64_t removed = rel.EraseBatch(victims);
    benchmark::DoNotOptimize(removed);
    ++rounds;
  }
  state.SetItemsProcessed(rounds * static_cast<int64_t>(victims.size()));
}
BENCHMARK(BM_BatchedErase)->Arg(4096);

// Hash-index build: one Value hashed + one bucket append per row.
void BM_HashIndexBuild(benchmark::State& state) {
  Random rng(41);
  GeneratorOptions gen;
  gen.cardinality = state.range(0);
  gen.num_attributes = 2;
  gen.key_domain = state.range(0) / 2;
  const Relation rel = GenerateRelation("R", gen, &rng);
  int64_t rounds = 0;
  for (auto _ : state) {
    HashIndex index(rel, 0);
    benchmark::DoNotOptimize(index);
    ++rounds;
  }
  state.SetItemsProcessed(rounds * state.range(0));
}
BENCHMARK(BM_HashIndexBuild)->Arg(4096);

// Extent comparison with cached per-relation tuple-hash columns: after the
// first round both sides' hash columns are warm, so SetEquals only probes
// buckets.  This is the hot loop of the experiments' extent equivalence
// checks.
void BM_RelationSetEquals(benchmark::State& state) {
  Random rng(11);
  GeneratorOptions gen;
  gen.cardinality = state.range(0);
  gen.num_attributes = 3;
  gen.key_domain = state.range(0) / 2;
  const Relation a = GenerateRelation("R", gen, &rng);
  const Relation b = a;
  int64_t rounds = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetEquals(a, b));
    ++rounds;
  }
  state.SetItemsProcessed(rounds * state.range(0));
}
BENCHMARK(BM_RelationSetEquals)->Arg(1024)->Arg(4096);

// The parallel scenario sweep of the experiment drivers: the full
// six-relation distribution grid (all m) through the analytic cost model,
// across Arg threads.
void BM_ParallelCostSweep(benchmark::State& state) {
  const UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  std::vector<std::vector<int>> dists;
  for (int m = 1; m <= params.num_relations; ++m) {
    for (std::vector<int>& d : Compositions(params.num_relations, m)) {
      dists.push_back(std::move(d));
    }
  }
  const int threads = static_cast<int>(state.range(0));
  int64_t scenarios = 0;
  for (auto _ : state) {
    auto results = SweepSiteAveragedUpdateCost(dists, params, options, threads);
    benchmark::DoNotOptimize(results);
    scenarios += static_cast<int64_t>(dists.size());
  }
  state.SetItemsProcessed(scenarios);
}
BENCHMARK(BM_ParallelCostSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_IncrementalMaintenance(benchmark::State& state) {
  ExecFixture fixture(state.range(0));
  ViewMaintainer maintainer(fixture.space);
  Relation extent = maintainer.Recompute(fixture.view).value();
  Random rng(3);
  int64_t processed = 0;
  for (auto _ : state) {
    DataUpdate update{
        UpdateKind::kInsert, RelationId{"IS1", "R"},
        Tuple{Value(static_cast<int64_t>(rng.Uniform(state.range(0) / 2))),
              Value(static_cast<int64_t>(rng.Uniform(1000)))}};
    (void)fixture.space.ApplyDataUpdate(update);
    auto counters = maintainer.ProcessUpdate(fixture.view, update, &extent);
    benchmark::DoNotOptimize(counters);
    ++processed;
  }
  state.SetItemsProcessed(processed);
}
BENCHMARK(BM_IncrementalMaintenance)->Arg(256)->Arg(1024);

// --- Evolution-stream scenario (bench_util/scenario.h) -----------------------

ScenarioOptions EvolutionScenario() {
  ScenarioOptions scenario;
  scenario.views = 32;
  scenario.replicas_per_family = 8;
  scenario.snowflake = true;
  // Small extents: the stream measures metadata churn, not row movement.
  scenario.dimension_rows = 256;
  scenario.fact_rows = 256;
  return scenario;
}

// Replays a >=1k-event stream (capability changes + data updates + re-links)
// against 32 views over snowflake replica chains, with the per-event
// replaceability sweep every monitored warehouse runs.  With delta-aware
// invalidation the sweep's closures stay memoized across events (O(stream)
// total closure work); `selective = false` flips the MKB to whole-memo
// flushes, recomputing every closure after every capability change
// (O(stream^2)) -- the mode BM_EvolutionStream_FullFlush measures.
void RunEvolutionStream(benchmark::State& state, bool selective,
                        EveOptions eve_options = EveOptions{},
                        int partial_mirrors = 0) {
  ScenarioOptions scenario = EvolutionScenario();
  scenario.partial_mirrors = partial_mirrors;
  const int num_events = static_cast<int>(state.range(0));
  const std::vector<ScenarioEvent> stream =
      GenerateEventStream(scenario, num_events, scenario.seed + 1);
  eve_options.materialize = false;
  int64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto system = BuildScenarioSystem(scenario, eve_options).value();
    system->mkb().set_selective_invalidation(selective);
    state.ResumeTiming();
    auto result = ReplayScenario(*system, stream);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    events += result->events_applied;
  }
  state.SetItemsProcessed(events);
}

void BM_EvolutionStream(benchmark::State& state) {
  RunEvolutionStream(state, /*selective=*/true);
}
BENCHMARK(BM_EvolutionStream)->Arg(1024);

void BM_EvolutionStream_FullFlush(benchmark::State& state) {
  RunEvolutionStream(state, /*selective=*/false);
}
BENCHMARK(BM_EvolutionStream_FullFlush)->Arg(1024);

// The CVS-rich space (8 partial-coverage subset mirrors per family, the
// complementary-coverage pair material) under always-enumerate: the
// quadratic CVS pair fan-out every replica deletion triggers.  The policy
// pair below replays the identical stream with the Balanced decision layer
// capping exactly that fan-out -- BM_EvolutionStream_Fanout vs
// BM_EvolutionStream_Policy is the decision layer's end-to-end win.
void BM_EvolutionStream_Fanout(benchmark::State& state) {
  RunEvolutionStream(state, /*selective=*/true, EveOptions{},
                     /*partial_mirrors=*/8);
}
BENCHMARK(BM_EvolutionStream_Fanout)->Arg(1024);

// The same stream under the Balanced selective policy (policy/ pre-checks
// classify each (change, view) pair as skip / cap / full before the
// synchronizer enumerates).
void BM_EvolutionStream_Policy(benchmark::State& state) {
  RunEvolutionStream(state, /*selective=*/true,
                     EvolutionPolicy::Balanced().ToEveOptions(),
                     /*partial_mirrors=*/8);
}
BENCHMARK(BM_EvolutionStream_Policy)->Arg(1024);

// Scenario construction alone: space + PC/JC declarations + views + one
// batched snapshot, and the deterministic stream generator.
void BM_ScenarioGen(benchmark::State& state) {
  const ScenarioOptions scenario = EvolutionScenario();
  EveOptions eve_options;
  eve_options.materialize = false;
  for (auto _ : state) {
    auto system = BuildScenarioSystem(scenario, eve_options).value();
    auto stream = GenerateEventStream(scenario, 1024, scenario.seed + 1);
    benchmark::DoNotOptimize(system);
    benchmark::DoNotOptimize(stream);
  }
}
BENCHMARK(BM_ScenarioGen);

// google-benchmark replaced Run::error_occurred with Run::skipped in 1.8;
// detect whichever member this library version has so the reporter builds
// against both.
template <typename R, typename = void>
struct HasSkippedMember : std::false_type {};
template <typename R>
struct HasSkippedMember<R,
                        std::void_t<decltype(std::declval<const R&>().skipped)>>
    : std::true_type {};

template <typename R>
bool RunFailedOrSkipped(const R& run) {
  if constexpr (HasSkippedMember<R>::value) {
    return static_cast<bool>(run.skipped);
  } else {
    return run.error_occurred;
  }
}

// Console reporting plus capture of every per-iteration run for the
// BENCH_micro.json side output.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || RunFailedOrSkipped(run)) continue;
      BenchRecord record;
      record.name = run.benchmark_name();
      record.ns_per_op = run.GetAdjustedRealTime();
      record.iterations = run.iterations;
      record.threads = run.threads;
      records_.push_back(std::move(record));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::vector<BenchRecord> records_;
};

}  // namespace
}  // namespace eve

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  eve::JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const char* path = std::getenv("EVE_BENCH_JSON_PATH");
  const eve::Status written = eve::WriteBenchJson(
      path != nullptr ? path : "BENCH_micro.json", reporter.records());
  if (!written.ok()) {
    fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}
