#!/usr/bin/env python3
"""Fails when a benchmark regresses against the checked-in reference run.

Usage:
    check_bench_regression.py CURRENT.json REFERENCE.json [--max-ratio 2.0]

Both files use the BENCH_micro.json schema written by micro_benchmarks
(src/bench_util/bench_json.h): {"benchmarks": [{"name", "ns_per_op",
"iterations", "threads"}, ...]}.

A benchmark "regresses" when current ns_per_op exceeds the reference by
more than --max-ratio (default 2.0).  The generous threshold absorbs
machine-to-machine variance between the CI runner and the machine that
produced the reference; a >2x slide on the same benchmark is almost always
a real algorithmic regression, not noise.  Benchmarks present on only one
side are reported but never fail the check, so adding or retiring
benchmarks does not require touching the reference in the same commit.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for record in doc.get("benchmarks", []):
        # Multi-threaded variants of one benchmark share a name; key on
        # (name, threads) so they compare against their own configuration.
        key = (record["name"], record.get("threads", 1))
        out[key] = float(record["ns_per_op"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("reference")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current/reference exceeds this")
    args = parser.parse_args()

    current = load(args.current)
    reference = load(args.reference)

    regressions = []
    compared = 0
    for key, ref_ns in sorted(reference.items()):
        if key not in current:
            print(f"note: {key[0]} (threads={key[1]}) missing from current run")
            continue
        cur_ns = current[key]
        compared += 1
        ratio = cur_ns / ref_ns if ref_ns > 0 else float("inf")
        marker = "REGRESSION" if ratio > args.max_ratio else "ok"
        print(f"{marker:>10}  {key[0]} (threads={key[1]}): "
              f"{cur_ns:.0f} ns vs {ref_ns:.0f} ns ({ratio:.2f}x)")
        if ratio > args.max_ratio:
            regressions.append(key)
    for key in sorted(set(current) - set(reference)):
        print(f"note: {key[0]} (threads={key[1]}) not in reference (new?)")

    if compared == 0:
        print("error: no overlapping benchmarks to compare", file=sys.stderr)
        return 1
    if regressions:
        print(f"error: {len(regressions)} benchmark(s) regressed more than "
              f"{args.max_ratio}x", file=sys.stderr)
        return 1
    print(f"all {compared} compared benchmarks within {args.max_ratio}x "
          "of reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
